"""Command-line entry point: ``repro-nfs`` / ``python -m repro``.

Examples::

    repro-nfs list
    repro-nfs run fig2
    repro-nfs run all --quick
    repro-nfs run fig1 fig7 --scale 8
    repro-nfs run fig1 --full        # paper-size sweep (slow)
    repro-nfs run scenarios/lossy-burst.json   # declarative chaos scenario
    repro-nfs corpus                 # replay the whole scenario corpus
    repro-nfs fuzz --seed 1 --draws 25 --save-dir scenarios
    repro-nfs fleet --clients 8 --target netapp
    repro-nfs fleet --clients 4 --target linux --sanitize
    repro-nfs faults --list
    repro-nfs faults --scenario lossy-burst --seed 1
    repro-nfs faults --sanitize
    repro-nfs trace fig1                 # Chrome trace + metrics bundle
    repro-nfs trace lossy-burst --out obs-lossy
    repro-nfs metrics fig1               # prometheus text to stdout
    repro-nfs report obs-fig1            # ASCII dashboard from a bundle
    repro-nfs report fleet --html fleet.html
    repro-nfs lint --strict
    repro-nfs lint src/repro/sim --select DET101,DEAD301
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import List, Optional

from .registry import experiment_ids, get_experiment

__all__ = ["main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-nfs",
        description=(
            "Reproduce 'Linux NFS Client Write Performance' "
            "(Lever & Honeyman, USENIX 2002) in simulation."
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list reproducible tables/figures")
    run = sub.add_parser(
        "run", help="run experiments or declarative scenario files"
    )
    run.add_argument(
        "ids",
        nargs="+",
        help=f"experiment ids ({', '.join(experiment_ids())}), 'all', "
        "or scenario.json paths",
    )
    run.add_argument(
        "--scale",
        type=float,
        default=4.0,
        help="memory scale factor for the file-size sweeps (default 4)",
    )
    run.add_argument(
        "--full",
        action="store_true",
        help="run sweeps at the paper's full 256 MB / 450 MB scale (slow)",
    )
    run.add_argument(
        "--quick",
        action="store_true",
        help="reduced sizes for a fast smoke run",
    )
    run.add_argument(
        "--dump-dir",
        default=None,
        help="export each experiment's report/data/CSVs into this directory",
    )
    run.add_argument(
        "--obs-dir",
        default=None,
        metavar="DIR",
        help="additionally run each experiment's observed trace point and "
        "write its trace/metrics/profile bundle under DIR/<id>",
    )
    run.add_argument(
        "--force",
        action="store_true",
        help="with --obs-dir: overwrite existing bundles",
    )
    run.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="run sweep points over N worker processes (0 = all cores; "
        "results are identical to --jobs 1)",
    )
    run.add_argument(
        "--no-cache",
        action="store_true",
        help="recompute every sweep point instead of reusing cached results",
    )
    run.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        help="result cache location (default: $REPRO_NFS_CACHE_DIR or "
        "~/.cache/repro-nfs)",
    )
    run.add_argument(
        "--sanitize",
        action="store_true",
        help="scenario files only: run under the runtime sanitizers",
    )
    run.add_argument(
        "--shards",
        type=int,
        default=0,
        metavar="N",
        help="scenario files only: replay fleet scenarios as N parallel "
        "DES shards and audit serial equivalence (default 0 = skip)",
    )
    corpus = sub.add_parser(
        "corpus",
        help="replay every scenario in the corpus against its pinned "
        "expectations (verdicts + fingerprints)",
    )
    corpus.add_argument(
        "--dir",
        default="scenarios",
        dest="corpus_dir",
        metavar="DIR",
        help="corpus root (default: scenarios)",
    )
    corpus.add_argument(
        "--sanitize",
        action="store_true",
        help="run each scenario under the runtime sanitizers",
    )
    corpus.add_argument(
        "--no-verify",
        action="store_true",
        help="skip the second run that checks bit-for-bit determinism",
    )
    fuzz = sub.add_parser(
        "fuzz",
        help="run the seeded fault-schedule fuzzer; violations are "
        "delta-debug shrunk to minimal reproducers",
    )
    fuzz.add_argument(
        "--seed", type=int, default=1, help="fuzz campaign seed (default 1)"
    )
    fuzz.add_argument(
        "--draws",
        type=int,
        default=25,
        metavar="N",
        help="number of random scenarios to draw (default 25)",
    )
    fuzz.add_argument(
        "--shards",
        type=int,
        default=2,
        metavar="N",
        help="shard count for fleet draws' serial-equivalence audit "
        "(default 2; 0 = skip)",
    )
    fuzz.add_argument(
        "--no-sanitize",
        action="store_true",
        help="skip the runtime sanitizers (faster, weaker oracle)",
    )
    fuzz.add_argument(
        "--save-dir",
        default=None,
        metavar="DIR",
        help="corpus root to auto-save shrunk findings under "
        "DIR/regressions/",
    )
    fuzz.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        dest="json_path",
        help="write the campaign report (draws, verdicts, findings) as "
        "JSON to PATH",
    )
    fleet = sub.add_parser(
        "fleet",
        help="run a multi-client fleet against one server and audit "
        "fairness, saturation, and determinism",
    )
    fleet.add_argument(
        "--clients", type=int, default=8, help="client count (default 8)"
    )
    fleet.add_argument(
        "--target",
        choices=("netapp", "linux", "linux-100"),
        default="netapp",
        help="server under test (default netapp)",
    )
    fleet.add_argument(
        "--client-variant",
        default="stock",
        metavar="NAME",
        help="NFS client variant every fleet member runs (default stock)",
    )
    fleet.add_argument(
        "--file-kib",
        type=int,
        default=1024,
        metavar="KIB",
        help="per-client file size in KiB (default 1024)",
    )
    fleet.add_argument(
        "--chunk",
        type=int,
        default=8192,
        metavar="BYTES",
        help="write() size (default 8192)",
    )
    fleet.add_argument(
        "--stagger-us",
        type=int,
        default=0,
        metavar="US",
        help="stagger client start times by this many microseconds each",
    )
    fleet.add_argument(
        "--arrivals",
        default=None,
        metavar="SPEC",
        help="run the fleet open-loop: SPEC is a compact key=value "
        "string (e.g. 'rate=200 duration_ms=80'), inline JSON, or a "
        "path to a JSON arrival-spec file; each client releases "
        "sessions on its own seeded arrival process and the run is "
        "SLO-scored (offered-load vs goodput, knee)",
    )
    fleet.add_argument(
        "--seed",
        type=int,
        default=1,
        metavar="N",
        help="base seed for the open-loop arrival/mix/size streams "
        "(default 1; only meaningful with --arrivals)",
    )
    fleet.add_argument(
        "--slo-out",
        default=None,
        metavar="PATH",
        dest="slo_out",
        help="with --arrivals, write the repro-nfs/slo-report@1 JSON "
        "(load curves, knee, per-SLO verdicts) to PATH",
    )
    fleet.add_argument(
        "--shards",
        type=int,
        default=1,
        metavar="N",
        help="run the fleet as N parallel DES shards (one worker process "
        "per client group); must reproduce the serial fingerprint "
        "bit-for-bit (default 1 = serial)",
    )
    fleet.add_argument(
        "--no-verify",
        action="store_true",
        help="skip the second run that checks bit-for-bit determinism "
        "(with --shards > 1, the check replays serially)",
    )
    fleet.add_argument(
        "--sanitize",
        action="store_true",
        help="run under the runtime sanitizers and audit their findings",
    )
    bench = sub.add_parser(
        "bench",
        help="run the performance lanes (sim-core events/sec, headline "
        "wall-clock, fleet serial-vs-sharded, cache hit rate)",
    )
    bench.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        dest="json_path",
        help="additionally write the lane results as a JSON row to PATH",
    )
    bench.add_argument(
        "--quick",
        action="store_true",
        help="reduced sizes for a fast smoke run",
    )
    faults = sub.add_parser(
        "faults",
        help="run fault-injection scenarios and audit their invariants",
    )
    faults.add_argument(
        "--scenario",
        action="append",
        default=None,
        metavar="NAME",
        help="scenario to run (repeatable; default: all)",
    )
    faults.add_argument(
        "--seed", type=int, default=1, help="fault RNG seed (default 1)"
    )
    faults.add_argument(
        "--list", action="store_true", help="list available scenarios"
    )
    faults.add_argument(
        "--no-verify",
        action="store_true",
        help="skip the second run that checks bit-for-bit determinism",
    )
    faults.add_argument(
        "--sanitize",
        action="store_true",
        help="run under the runtime sanitizers (lock order, races, "
        "invariants) and audit their findings as extra invariants",
    )
    faults.add_argument(
        "--obs-dir",
        default=None,
        metavar="DIR",
        help="re-run each scenario observed and write its trace/metrics/"
        "profile bundle under DIR/<scenario>",
    )
    faults.add_argument(
        "--force",
        action="store_true",
        help="with --obs-dir: overwrite existing bundles",
    )
    trace = sub.add_parser(
        "trace",
        help="run one experiment trace-point or fault scenario observed "
        "and export a Chrome-trace/metrics/profile bundle",
    )
    trace.add_argument(
        "name",
        help="experiment id (fig1..fig7, tab1) or fault scenario name",
    )
    trace.add_argument(
        "--out",
        default=None,
        metavar="DIR",
        help="bundle directory (default: obs-<name>)",
    )
    trace.add_argument(
        "--seed", type=int, default=1, help="fault RNG seed (default 1)"
    )
    trace.add_argument(
        "--force",
        action="store_true",
        help="overwrite an existing bundle in the output directory",
    )
    report = sub.add_parser(
        "report",
        help="render a timeline/SLO dashboard from an obs bundle "
        "directory, or re-run an observed trace point and report it",
    )
    report.add_argument(
        "target",
        help="bundle directory (containing timeline.json) or an "
        "experiment id / fault scenario / trace-point name",
    )
    report.add_argument(
        "--html",
        default=None,
        metavar="PATH",
        help="write a standalone HTML dashboard to PATH instead of "
        "printing ASCII",
    )
    report.add_argument(
        "--seed", type=int, default=1, help="fault RNG seed (default 1)"
    )
    metrics = sub.add_parser(
        "metrics",
        help="run one observed trace-point and print its metrics registry "
        "as prometheus-style text",
    )
    metrics.add_argument(
        "name",
        help="experiment id (fig1..fig7, tab1) or fault scenario name",
    )
    metrics.add_argument(
        "--seed", type=int, default=1, help="fault RNG seed (default 1)"
    )
    lint = sub.add_parser(
        "lint",
        help="run the determinism linter over the simulator sources",
    )
    lint.add_argument(
        "paths",
        nargs="*",
        default=None,
        help="files or directories to lint (default: the repro package)",
    )
    lint.add_argument(
        "--strict",
        action="store_true",
        help="fail on warnings too, and flag unused noqa suppressions",
    )
    lint.add_argument(
        "--select",
        default=None,
        metavar="CODES",
        help="comma-separated rule codes to check (default: all)",
    )
    lint.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        dest="fmt",
        help="output format (default: text)",
    )
    lint.add_argument(
        "--deep",
        action="store_true",
        help="also run the whole-program flow analysis (repro-nfs flow)",
    )
    lint.add_argument(
        "--fix-suppressions",
        action="store_true",
        help="remove stale noqa comments flagged by SUP401 (dry-run "
        "unless --write)",
    )
    lint.add_argument(
        "--write",
        action="store_true",
        help="with --fix-suppressions: rewrite files in place",
    )
    flow = sub.add_parser(
        "flow",
        help="whole-program flow analysis: prove the pure-observer, "
        "determinism-taint, lock-discipline, and sim-API contracts",
    )
    flow.add_argument(
        "root",
        nargs="?",
        default=None,
        help="package directory to analyse (default: the repro package)",
    )
    flow.add_argument(
        "--strict",
        action="store_true",
        help="fail on warnings too",
    )
    flow.add_argument(
        "--select",
        default=None,
        metavar="CODES",
        help="comma-separated flow rule codes to report (default: all)",
    )
    flow.add_argument(
        "--format",
        choices=("text", "json"),
        default="text",
        dest="fmt",
        help="output format (default: text)",
    )
    flow.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="committed baseline to diff against; drift in either "
        "direction fails",
    )
    flow.add_argument(
        "--write-baseline",
        default=None,
        metavar="FILE",
        help="write the current findings as a fresh baseline and exit 0",
    )
    return parser


def run_experiments(
    ids: List[str],
    scale: float,
    quick: bool,
    out=None,
    dump_dir: Optional[str] = None,
    obs_dir: Optional[str] = None,
    force: bool = False,
    context: Optional["ExecutionContext"] = None,
) -> bool:
    from .base import ExecutionContext

    if out is None:
        out = sys.stdout
    context = context or ExecutionContext()
    all_passed = True
    for experiment_id in ids:
        experiment = get_experiment(experiment_id)
        # Wall-clock reporting for the human at the terminal; never
        # feeds back into the simulation.
        started = time.time()  # noqa: DET102
        result = experiment.run(scale=scale, quick=quick, context=context)
        elapsed = time.time() - started  # noqa: DET102
        out.write(result.render())
        out.write(f"\n({elapsed:.1f} s wall)\n\n")
        if dump_dir:
            from .base import export_result

            for path in export_result(result, dump_dir):
                out.write(f"  wrote {path}\n")
        if obs_dir:
            import os

            from ..obs.bundle import TRACE_POINTS

            if experiment_id in TRACE_POINTS:
                run_trace_bundle(
                    experiment_id,
                    os.path.join(obs_dir, experiment_id),
                    force=force,
                    out=out,
                )
        all_passed = all_passed and result.passed
    return all_passed


def run_trace_bundle(
    name: str,
    out_dir: Optional[str] = None,
    seed: int = 1,
    force: bool = False,
    out=None,
) -> int:
    """``repro-nfs trace``: one observed run, one bundle on disk."""
    import os

    from ..bench.report import trace_summary
    from ..errors import ConfigError
    from ..obs.bundle import run_traced, write_bundle

    if out is None:
        out = sys.stdout
    out_dir = out_dir or f"obs-{name}"
    observabilities, result, outcome = run_traced(name, seed=seed)
    if not observabilities:
        out.write(f"{name}: nothing observed\n")
        return 1
    multi = len(observabilities) > 1
    for i, obs in enumerate(observabilities):
        try:
            paths = write_bundle(
                obs, out_dir, name, index=i if multi else None, force=force
            )
        except ConfigError as err:
            out.write(f"error: {err}\n")
            return 1
        for path in paths:
            out.write(f"wrote {path}\n")
    if result is not None:
        out.write(trace_summary(result.trace) + "\n")
    if outcome is not None:
        verdict = "PASS" if outcome.passed else "FAIL"
        out.write(
            f"{verdict} {name} (fingerprint={outcome.fingerprint[:12]})\n"
        )
        return 0 if outcome.passed else 1
    out.write(
        f"load {os.path.join(out_dir, 'trace.json')} in "
        "https://ui.perfetto.dev or chrome://tracing\n"
    )
    return 0


def run_report(
    target: str, html: Optional[str] = None, seed: int = 1, out=None
) -> int:
    """``repro-nfs report``: timeline/SLO dashboard for one run.

    ``target`` is either an existing obs bundle directory — the
    timelines and slo-report are loaded from ``timeline*.json`` /
    ``slo*.json`` — or a trace-point / fault-scenario name, in which
    case the run happens here, observed, and is reported directly.
    """
    import json
    import os

    from ..obs.report import render_ascii, render_html
    from ..obs.slo import evaluate_slos
    from ..obs.timeseries import TimelineRegistry

    if out is None:
        out = sys.stdout
    pairs = []  # (label, TimelineRegistry, slo-report-or-None)
    if os.path.isdir(target):
        names = sorted(
            n
            for n in os.listdir(target)
            if n.startswith("timeline") and n.endswith(".json")
        )
        if not names:
            out.write(f"{target}: no timeline*.json bundle files\n")
            return 1
        for tname in names:
            with open(os.path.join(target, tname), encoding="utf-8") as fh:
                registry = TimelineRegistry.from_snapshot(json.load(fh))
            sname = "slo" + tname[len("timeline"):]
            spath = os.path.join(target, sname)
            report = None
            if os.path.exists(spath):
                with open(spath, encoding="utf-8") as fh:
                    report = json.load(fh)
            pairs.append((f"{target}/{tname}", registry, report))
    else:
        from ..obs.bundle import run_traced

        observabilities, _, _ = run_traced(target, seed=seed)
        if not observabilities:
            out.write(f"{target}: nothing observed\n")
            return 1
        for i, obs in enumerate(observabilities):
            label = target if len(observabilities) == 1 else f"{target}[{i}]"
            pairs.append(
                (label, obs.timelines, evaluate_slos(obs.timelines))
            )
    for i, (label, registry, report) in enumerate(pairs):
        if html:
            path = html
            if len(pairs) > 1:
                root, ext = os.path.splitext(html)
                path = f"{root}-{i}{ext}"
            with open(path, "w", encoding="utf-8") as fh:
                fh.write(render_html(registry, report, title=label))
            out.write(f"wrote {path}\n")
        else:
            out.write(f"== report: {label} ==\n")
            out.write(render_ascii(registry, report))
            out.write("\n")
    return 0


def print_metrics(name: str, seed: int = 1, out=None) -> int:
    """``repro-nfs metrics``: prometheus-style text on stdout."""
    from ..obs.export import prometheus_text
    from ..obs.bundle import run_traced

    if out is None:
        out = sys.stdout
    observabilities, _, _ = run_traced(name, seed=seed)
    if not observabilities:
        out.write(f"{name}: nothing observed\n")
        return 1
    for obs in observabilities:
        out.write(prometheus_text(obs.metrics))
    return 0


def run_fleet(
    clients: int,
    target: str,
    client_variant: str = "stock",
    file_kib: int = 1024,
    chunk_bytes: int = 8192,
    stagger_us: int = 0,
    shards: int = 1,
    verify: bool = True,
    sanitize: bool = False,
    arrivals: Optional[str] = None,
    seed: int = 1,
    slo_out: Optional[str] = None,
    out=None,
) -> bool:
    """``repro-nfs fleet``: one fleet point with a fairness audit.

    Runs N identical clients concurrently against one server, prints
    per-client and aggregate throughput plus Jain's fairness index, and
    audits invariants (durability, fairness, ingest envelope — and the
    sanitizer groups with ``sanitize``).  With ``verify`` the fleet runs
    a second, uninstrumented time and the two reduced results must hash
    identically: the bit-for-bit contract, which also proves the
    sanitizers perturbed nothing.

    ``shards > 1`` runs the same fleet as parallel DES shards: client
    groups simulate in worker processes, the switch and servers in this
    one.  Durable server state stays inspectable in-process, and the
    ``deterministic-replay`` invariant becomes the sharded-vs-serial
    equality check — the strongest form of the contract.

    ``arrivals`` switches the fleet open-loop: every client releases
    sessions on its own seeded arrival process (Poisson or MMPP, sized
    draws, workload mix) instead of writing one fixed file.  The run
    executes observed so the arrival layer's ``traffic/*`` timelines
    exist, and the verdict gains an SLO report: offered-load vs goodput
    curves and the located latency knee, written to ``slo_out`` when
    given.  The durability invariant switches to the open-loop bar
    (every planned session completed, nothing ingested left unstable)
    because per-session sizes vary by design.
    """
    import json
    import os
    from contextlib import ExitStack

    from ..faults.scenarios import Invariant, _sanitizer_invariants
    from ..topology import FleetJobSpec, FleetWorkload, Topology
    from ..topology.fleet import reduce_fleet
    from ..units import KIB, us

    if out is None:
        out = sys.stdout
    arrival_spec = None
    if arrivals is not None:
        from ..traffic import parse_arrivals

        text = arrivals
        if os.path.isfile(arrivals):
            with open(arrivals, "r", encoding="utf-8") as handle:
                text = handle.read()
        arrival_spec = parse_arrivals(text)
    spec = FleetJobSpec.homogeneous(
        clients,
        target=target,
        client=client_variant,
        file_bytes=file_kib * KIB,
        chunk_bytes=chunk_bytes,
        stagger_ns=us(stagger_us),
        arrivals=arrival_spec,
        seed=seed,
    )
    started = time.time()  # noqa: DET102 - wall-clock reporting only
    registry = None
    with ExitStack() as stack:
        san_session = None
        if sanitize:
            from ..analysis.sanitize import sanitized

            san_session = stack.enter_context(sanitized())
        if arrival_spec is not None:
            # Open-loop runs are SLO-scored, which needs timelines, so
            # the first execution runs observed.  The verify replay
            # below stays unobserved — its fingerprint match doubles as
            # the pure-observer proof.
            from ..obs.core import observed

            stack.enter_context(observed())
        if shards > 1:
            from ..parallel.des import run_sharded_fleet

            outcome = run_sharded_fleet(spec, shards=shards)
            point = outcome.point
            live_servers = outcome.servers
            if outcome.observability is not None:
                registry = outcome.observability.timelines
        else:
            topo = Topology(
                clients=spec.clients, servers=spec.servers, switch=spec.switch
            )
            fleet = FleetWorkload(
                topo,
                spec.file_bytes,
                chunk_bytes=spec.chunk_bytes,
                do_fsync=spec.do_fsync,
                stagger_ns=spec.stagger_ns,
                workload=spec.workload,
                arrivals=spec.arrivals,
                seed=spec.seed,
            ).run(time_limit_ns=spec.time_limit_ns)
            point = reduce_fleet(fleet)
            live_servers = topo.servers
            if arrival_spec is not None:
                registry = topo.obs.timelines
    elapsed = time.time() - started  # noqa: DET102

    rows = [
        (c["name"], f"{mb:.2f}", f"{p99:.1f}")
        for c, mb, p99 in zip(
            point.clients, point.client_mbps(), point.client_p99_us()
        )
    ]
    width = max(len(r[0]) for r in rows)
    sharding = f", {shards} shards" if shards > 1 else ""
    if arrival_spec is not None:
        load = (
            f"open-loop {arrival_spec.process} "
            f"{arrival_spec.rate_per_s:g}/s x "
            f"{arrival_spec.duration_ns / 1e6:g} ms"
        )
    else:
        load = f"{file_kib} KiB each"
    out.write(f"{clients} x {client_variant} client(s) -> {target}, "
              f"{load}{sharding}\n")
    out.write(f"{'client'.ljust(width)}  write MBps   p99 us\n")
    for name, mb, p99 in rows:
        out.write(f"{name.ljust(width)}  {mb.rjust(10)}  {p99.rjust(7)}\n")
    out.write(
        f"aggregate {point.aggregate_mbps:.2f} MBps over "
        f"{point.span_ns / 1e6:.1f} ms, Jain {point.fairness:.4f}\n"
    )
    for row in point.servers:
        shares = ", ".join(
            f"{src} {share:.3f}" for src, share in sorted(row["ingest_shares"].items())
        )
        out.write(
            f"{row['name']}: {row['bytes_received']} bytes in, "
            f"shares [{shares}], downlink queued "
            f"{row['downlink_queue_ns'] / 1e6:.1f} ms total\n"
        )

    slo_report = None
    if arrival_spec is not None and registry is not None:
        from ..obs.slo import evaluate_slos

        slo_report = evaluate_slos(registry)
        offered_total = sum(n for _, n in slo_report["load"]["offered_bytes"])
        goodput_total = sum(n for _, n in slo_report["load"]["goodput_bytes"])
        out.write(
            f"offered {offered_total / 1e6:.2f} MB over "
            f"{len(slo_report['load']['offered_bytes'])} windows, "
            f"goodput {goodput_total / 1e6:.2f} MB over "
            f"{len(slo_report['load']['goodput_bytes'])}\n"
        )
        knee = slo_report["knee"]
        if knee is not None:
            out.write(
                f"knee at {knee['offered_bytes_per_window']} B/window "
                f"(p99 {knee['p99']:.1f} us, window starting "
                f"{knee['window_start_ns'] / 1e6:.1f} ms)\n"
            )
        else:
            out.write("knee: not located (load curve too short or flat)\n")
        if slo_out is not None:
            with open(slo_out, "w", encoding="utf-8") as handle:
                json.dump(slo_report, handle, indent=2, sort_keys=True)
                handle.write("\n")
            out.write(f"slo report -> {slo_out}\n")

    invariants = []
    if arrival_spec is not None:
        planned = sum(
            c.get("extra", {}).get("sessions", 0) for c in point.clients
        )
        completed = sum(c.get("ops", 0) for c in point.clients)
        invariants.append(
            Invariant(
                "open-loop-complete",
                planned > 0 and completed == planned,
                f"{completed}/{planned} sessions completed",
            )
        )
    for server in live_servers:
        if server is None:
            continue
        if arrival_spec is not None:
            laggards = sorted(
                f.name
                for f in server.files.values()
                if f.stable_bytes < f.size
            )
            invariants.append(
                Invariant(
                    f"open-loop-durable[{server.name}]",
                    not laggards,
                    f"unstable files: {laggards}",
                )
            )
        else:
            laggards = sorted(
                f.name
                for f in server.files.values()
                if f.size != spec.file_bytes or f.stable_bytes < f.size
            )
            invariants.append(
                Invariant(
                    f"files-complete-durable[{server.name}]",
                    len(server.files) == clients and not laggards,
                    f"{len(server.files)} files, incomplete: {laggards}",
                )
            )
        bound = 1.1 * server.ingest_bytes_per_sec
        invariants.append(
            Invariant(
                f"within-ingest-envelope[{server.name}]",
                point.aggregate_bytes_per_sec <= bound,
                f"aggregate {point.aggregate_mbps:.1f} MBps exceeds "
                "the server's ingest rate",
            )
        )
    if stagger_us == 0 and arrival_spec is None:
        invariants.append(
            Invariant(
                "fair-share",
                point.fairness >= 0.95,
                f"Jain {point.fairness:.4f} < 0.95 for identical clients",
            )
        )
    if sanitize:
        invariants.extend(_sanitizer_invariants(san_session))
    fingerprint = point.run_fingerprint()
    if verify:
        from ..topology import run_fleet_job

        # Always replays serially: with shards > 1 this is the
        # sharded-vs-serial bit-identity contract, not just a rerun.
        replay_fp = run_fleet_job(spec).run_fingerprint()
        name = "deterministic-replay" if shards == 1 else "serial-equivalence"
        invariants.append(
            Invariant(
                name,
                replay_fp == fingerprint,
                f"replay fingerprint {replay_fp[:12]} != {fingerprint[:12]}",
            )
        )

    passed = all(inv.ok for inv in invariants)
    verdict = "PASS" if passed else "FAIL"
    out.write(
        f"{verdict} fleet (fingerprint={fingerprint[:12]}, {elapsed:.1f} s wall)\n"
    )
    for inv in invariants:
        mark = "ok" if inv.ok else "VIOLATED"
        detail = f" — {inv.detail}" if inv.detail and not inv.ok else ""
        out.write(f"  [{mark:8s}] {inv.name}{detail}\n")
    return passed


def run_fault_scenarios(
    names: Optional[List[str]],
    seed: int,
    verify: bool = True,
    sanitize: bool = False,
    obs_dir: Optional[str] = None,
    force: bool = False,
    out=None,
) -> bool:
    from ..faults import SCENARIOS, run_scenario

    if out is None:
        out = sys.stdout
    names = names or sorted(SCENARIOS)
    all_passed = True
    for name in names:
        # Wall-clock reporting only, as above.
        started = time.time()  # noqa: DET102
        outcome = run_scenario(
            name,
            seed=seed,
            verify_determinism=verify,
            sanitize=sanitize,
            observe=obs_dir is not None,
        )
        elapsed = time.time() - started  # noqa: DET102
        if obs_dir is not None and outcome.observabilities:
            import os

            from ..errors import ConfigError
            from ..obs.bundle import write_bundle

            multi = len(outcome.observabilities) > 1
            try:
                for i, obs in enumerate(outcome.observabilities):
                    for path in write_bundle(
                        obs,
                        os.path.join(obs_dir, name),
                        name,
                        index=i if multi else None,
                        force=force,
                    ):
                        out.write(f"  wrote {path}\n")
            except ConfigError as err:
                out.write(f"  error: {err}\n")
                all_passed = False
        verdict = "PASS" if outcome.passed else "FAIL"
        out.write(
            f"{verdict} {name} (seed={seed}, "
            f"fingerprint={outcome.fingerprint[:12]}, {elapsed:.1f} s wall)\n"
        )
        for inv in outcome.invariants:
            mark = "ok" if inv.ok else "VIOLATED"
            # Details are phrased as failure diagnostics; show them only
            # when the invariant actually tripped.
            detail = f" — {inv.detail}" if inv.detail and not inv.ok else ""
            out.write(f"  [{mark:8s}] {inv.name}{detail}\n")
        all_passed = all_passed and outcome.passed
    return all_passed


def _write_invariants(invariants, out) -> None:
    for inv in invariants:
        mark = "ok" if inv.ok else "VIOLATED"
        detail = f" — {inv.detail}" if inv.detail and not inv.ok else ""
        out.write(f"  [{mark:8s}] {inv.name}{detail}\n")


def run_scenario_files(
    paths: List[str], sanitize: bool = False, shards: int = 0, out=None
) -> bool:
    """``repro-nfs run <scenario.json>``: replay declarative scenarios.

    Each file is schema-validated, placeholder-substituted from the
    environment, run under its selected checks, and — when it carries an
    ``expect`` block — audited against its pinned verdicts and
    fingerprint.  Any failed invariant or expectation drift fails the
    command (non-zero exit).
    """
    from ..chaos import replay_file

    if out is None:
        out = sys.stdout
    all_ok = True
    for path in paths:
        started = time.time()  # noqa: DET102 - wall-clock reporting only
        replay = replay_file(path, sanitize=sanitize, shards=shards)
        elapsed = time.time() - started  # noqa: DET102
        verdict = "PASS" if replay.verdict_ok else "FAIL"
        out.write(
            f"{verdict} {replay.spec.name} ({path}, seed={replay.outcome.seed}, "
            f"fingerprint={replay.outcome.fingerprint[:12]}, "
            f"{elapsed:.1f} s wall)\n"
        )
        _write_invariants(replay.outcome.invariants, out)
        for mismatch in replay.mismatches:
            out.write(f"  [DRIFT   ] {mismatch}\n")
        all_ok = all_ok and replay.verdict_ok
    return all_ok


def run_corpus(
    root: str, verify: bool = True, sanitize: bool = False, out=None
) -> bool:
    """``repro-nfs corpus``: strict replay of the whole corpus."""
    from ..chaos import corpus_files, replay_file

    if out is None:
        out = sys.stdout
    all_ok = True
    paths = corpus_files(root)
    for path in paths:
        started = time.time()  # noqa: DET102 - wall-clock reporting only
        replay = replay_file(
            path, verify_determinism=verify, sanitize=sanitize
        )
        elapsed = time.time() - started  # noqa: DET102
        verdict = "PASS" if replay.verdict_ok else "FAIL"
        out.write(
            f"{verdict} {replay.spec.name:20s} "
            f"fingerprint={replay.outcome.fingerprint[:12]} "
            f"({elapsed:.1f} s wall)\n"
        )
        if not replay.verdict_ok:
            _write_invariants(replay.outcome.invariants, out)
            for mismatch in replay.mismatches:
                out.write(f"  [DRIFT   ] {mismatch}\n")
        all_ok = all_ok and replay.verdict_ok
    out.write(f"{len(paths)} scenario(s) replayed\n")
    return all_ok


def run_fuzz_campaign(
    seed: int,
    draws: int,
    shards: int = 2,
    sanitize: bool = True,
    save_dir: Optional[str] = None,
    json_path: Optional[str] = None,
    out=None,
) -> bool:
    """``repro-nfs fuzz``: one seeded campaign, shrunk findings."""
    import json as json_mod

    from ..chaos import fuzz

    if out is None:
        out = sys.stdout
    started = time.time()  # noqa: DET102 - wall-clock reporting only
    report = fuzz(
        seed,
        draws,
        sanitize=sanitize,
        shards=shards,
        corpus_root=save_dir,
    )
    elapsed = time.time() - started  # noqa: DET102
    for row in report.rows:
        verdict = "PASS" if row["passed"] else "FAIL"
        shape = f"{row['clients']} client(s), {row['faults']} fault(s)"
        out.write(
            f"{verdict} draw {row['draw']:3d}  {shape:26s} "
            f"fingerprint={row['fingerprint'][:12]}\n"
        )
    for finding in report.findings:
        out.write(
            f"finding: draw {finding.draw} violated "
            f"{', '.join(finding.signature)}; shrunk to "
            f"{finding.shrunk.fault_count()} fault(s) in "
            f"{finding.shrink.steps} step(s)\n"
        )
        for step in finding.shrink.trace:
            out.write(f"    {step}\n")
        if finding.saved_path:
            out.write(f"  saved reproducer: {finding.saved_path}\n")
    if json_path:
        with open(json_path, "w", encoding="utf-8") as fh:
            json_mod.dump(report.payload(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        out.write(f"wrote {json_path}\n")
    verdict = "PASS" if report.passed else "FAIL"
    out.write(
        f"{verdict} fuzz seed={seed}: {draws} draw(s), "
        f"{len(report.findings)} finding(s), "
        f"campaign fingerprint={report.fingerprint()[:12]} "
        f"({elapsed:.1f} s wall)\n"
    )
    return report.passed


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if getattr(args, "jobs", 1) < 0:
        parser.error(f"--jobs must be >= 0, got {args.jobs}")
    if args.command == "fleet":
        if args.clients < 1:
            parser.error(f"--clients must be >= 1, got {args.clients}")
        if args.file_kib < 1:
            parser.error(f"--file-kib must be >= 1, got {args.file_kib}")
        if args.shards < 1:
            parser.error(f"--shards must be >= 1, got {args.shards}")
        ok = run_fleet(
            args.clients,
            args.target,
            client_variant=args.client_variant,
            file_kib=args.file_kib,
            chunk_bytes=args.chunk,
            stagger_us=args.stagger_us,
            shards=args.shards,
            verify=not args.no_verify,
            sanitize=args.sanitize,
            arrivals=args.arrivals,
            seed=args.seed,
            slo_out=args.slo_out,
        )
        return 0 if ok else 1
    if args.command == "bench":
        from .bench import run_bench

        return run_bench(json_path=args.json_path, quick=args.quick)
    if args.command == "faults":
        from ..faults import SCENARIOS

        if args.list:
            for name in sorted(SCENARIOS):
                print(f"{name:16s} {SCENARIOS[name].description}")
            return 0
        for name in args.scenario or []:
            if name not in SCENARIOS:
                parser.error(
                    f"unknown scenario {name!r} "
                    f"(expected one of {', '.join(sorted(SCENARIOS))})"
                )
        ok = run_fault_scenarios(
            args.scenario,
            seed=args.seed,
            verify=not args.no_verify,
            sanitize=args.sanitize,
            obs_dir=args.obs_dir,
            force=args.force,
        )
        return 0 if ok else 1
    if args.command == "corpus":
        ok = run_corpus(
            args.corpus_dir,
            verify=not args.no_verify,
            sanitize=args.sanitize,
        )
        return 0 if ok else 1
    if args.command == "fuzz":
        if args.draws < 1:
            parser.error(f"--draws must be >= 1, got {args.draws}")
        if args.shards < 0:
            parser.error(f"--shards must be >= 0, got {args.shards}")
        ok = run_fuzz_campaign(
            seed=args.seed,
            draws=args.draws,
            shards=args.shards,
            sanitize=not args.no_sanitize,
            save_dir=args.save_dir,
            json_path=args.json_path,
        )
        return 0 if ok else 1
    if args.command == "trace":
        return run_trace_bundle(
            args.name, out_dir=args.out, seed=args.seed, force=args.force
        )
    if args.command == "report":
        return run_report(args.target, html=args.html, seed=args.seed)
    if args.command == "metrics":
        return print_metrics(args.name, seed=args.seed)
    if args.command == "lint":
        from ..analysis.sanitize.lint import fix_suppressions, run_lint

        if args.fix_suppressions:
            return fix_suppressions(args.paths or None, write=args.write)
        rc = run_lint(
            args.paths or None, strict=args.strict, select=args.select, fmt=args.fmt
        )
        if args.deep:
            from pathlib import Path

            from ..analysis.flow import run_flow

            # Honour a committed baseline in the working directory so
            # `lint --deep` matches what the CI flow job enforces.
            baseline = "flow-baseline.json"
            deep_rc = run_flow(
                strict=args.strict,
                fmt=args.fmt,
                baseline=baseline if Path(baseline).exists() else None,
            )
            rc = max(rc, deep_rc)
        return rc
    if args.command == "flow":
        from ..analysis.flow import run_flow

        return run_flow(
            root=args.root,
            strict=args.strict,
            select=args.select,
            fmt=args.fmt,
            baseline=args.baseline,
            write_baseline=args.write_baseline,
        )
    if args.command == "list":
        for experiment_id in experiment_ids():
            experiment = get_experiment(experiment_id)
            print(f"{experiment_id:6s} {experiment.title}  [{experiment.paper_ref}]")
        return 0
    scenario_paths = [i for i in args.ids if i.endswith(".json")]
    experiment_args = [i for i in args.ids if not i.endswith(".json")]
    scenarios_ok = True
    if scenario_paths:
        scenarios_ok = run_scenario_files(
            scenario_paths, sanitize=args.sanitize, shards=args.shards
        )
        if not experiment_args:
            return 0 if scenarios_ok else 1
    ids = experiment_ids() if "all" in experiment_args else experiment_args
    scale = 1.0 if args.full else args.scale
    from ..cache import ResultCache
    from ..parallel import default_jobs
    from .base import ExecutionContext

    cache = None if args.no_cache else ResultCache(args.cache_dir)
    context = ExecutionContext(
        jobs=default_jobs() if args.jobs == 0 else args.jobs,
        cache=cache,
    )
    ok = run_experiments(
        ids, scale=scale, quick=args.quick, dump_dir=args.dump_dir,
        obs_dir=args.obs_dir, force=args.force, context=context,
    )
    return 0 if ok and scenarios_ok else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
