"""Table 1: client memory write throughput, before/after the lock fix.

Paper (5 MB file)::

                     Normal    No lock
    NetApp filer    115 MBps   140 MBps
    Linux server    138 MBps   147 MBps

"Even though the Network Appliance filer is faster than the Linux NFS
server is, the client's lack of scalability slows memory write
throughput to it more."
"""

from __future__ import annotations

from ..analysis import Comparison, ratio
from ..bench import TestBed
from ..units import MB
from .base import Experiment, format_table

__all__ = ["Table1"]

FILE_MB = 5

PAPER = {
    ("netapp", "hashtable"): 115.0,
    ("netapp", "nolock"): 140.0,
    ("linux", "hashtable"): 138.0,
    ("linux", "nolock"): 147.0,
}


class Table1(Experiment):
    id = "tab1"
    title = "Memory write throughput, Normal vs No-lock"
    paper_ref = "Table 1, §3.5"

    def _run(self, comparison: Comparison, data, scale: float, quick: bool) -> str:
        measured = {}
        for target in ("netapp", "linux"):
            for variant in ("hashtable", "nolock"):
                bed = TestBed(target=target, client=variant)
                result = bed.run_sequential_write(FILE_MB * MB)
                measured[(target, variant)] = result.write_mbps
        data["measured"] = {f"{t}/{v}": m for (t, v), m in measured.items()}

        comparison.add(
            "Normal: filer memory writes slower than Linux server's",
            measured[("netapp", "hashtable")] < measured[("linux", "hashtable")],
            paper="115 vs 138 MBps",
            measured=f"{measured[('netapp', 'hashtable')]:.0f} vs "
            f"{measured[('linux', 'hashtable')]:.0f} MBps",
        )
        for target in ("netapp", "linux"):
            comparison.add(
                f"lock fix improves memory writes ({target})",
                measured[(target, "nolock")] > measured[(target, "hashtable")],
                paper=f"{PAPER[(target, 'hashtable')]:.0f} -> "
                f"{PAPER[(target, 'nolock')]:.0f} MBps",
                measured=f"{measured[(target, 'hashtable')]:.0f} -> "
                f"{measured[(target, 'nolock')]:.0f} MBps",
            )
        filer_gain = ratio(measured[("netapp", "nolock")], measured[("netapp", "hashtable")])
        linux_gain = ratio(measured[("linux", "nolock")], measured[("linux", "hashtable")])
        comparison.add(
            "the filer gains more from the fix than the Linux server",
            filer_gain > linux_gain,
            paper="+22% vs +6.5%",
            measured=f"+{100 * (filer_gain - 1):.0f}% vs +{100 * (linux_gain - 1):.0f}%",
        )
        gap_before = ratio(measured[("netapp", "hashtable")], measured[("linux", "hashtable")])
        gap_after = ratio(measured[("netapp", "nolock")], measured[("linux", "nolock")])
        comparison.add(
            "servers end up 'almost in the same ballpark'",
            gap_after > gap_before and gap_after > 0.9,
            paper="ratio 0.83 -> 0.95",
            measured=f"ratio {gap_before:.2f} -> {gap_after:.2f}",
        )
        for key, paper_value in PAPER.items():
            got = measured[key]
            comparison.add(
                f"absolute throughput within 35% of paper ({key[0]}/{key[1]})",
                0.65 * paper_value <= got <= 1.35 * paper_value,
                paper=f"{paper_value:.0f} MBps",
                measured=f"{got:.0f} MBps",
                note="absolute values graded loosely; shapes strictly",
            )

        table = format_table(
            ["server", "Normal", "No lock", "paper Normal", "paper No lock"],
            [
                (
                    target,
                    measured[(target, "hashtable")],
                    measured[(target, "nolock")],
                    PAPER[(target, "hashtable")],
                    PAPER[(target, "nolock")],
                )
                for target in ("netapp", "linux")
            ],
        )
        return f"{FILE_MB} MB file, memory write throughput (MBps):\n{table}"
