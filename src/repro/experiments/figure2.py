"""Figure 2: actual write() latency over time — periodic spikes.

Paper: 40 MB file on the filer, stock client.  Most calls finish within
~300 µs but roughly every 85 calls one takes >19 ms (the
MAX_REQUEST_SOFT flush), inflating the mean 3.45x (482.1 µs vs 139.6 µs
excluding outliers).
"""

from __future__ import annotations

from ..analysis import Comparison
from ..bench import TestBed
from ..units import MB, NS_PER_MS, to_us
from .base import Experiment

__all__ = ["Figure2"]

FILE_MB = 40


class Figure2(Experiment):
    id = "fig2"
    title = "Periodic write() latency spikes (stock client)"
    paper_ref = "Figure 2, §3.3"

    def _run(self, comparison: Comparison, data, scale: float, quick: bool) -> str:
        file_mb = 10 if quick else FILE_MB
        bed = TestBed(target="netapp", client="stock")
        result = bed.run_sequential_write(file_mb * MB)
        trace = result.trace

        spikes = trace.spikes(threshold_ns=NS_PER_MS)
        period = trace.spike_period(threshold_ns=NS_PER_MS)
        spike_max_ms = trace.max_ns() / NS_PER_MS
        mean_all = to_us(trace.mean_ns())
        mean_healthy = to_us(trace.mean_ns(exclude_above_ns=NS_PER_MS))
        inflation = mean_all / mean_healthy if mean_healthy else 0.0
        spike_fraction = len(spikes) / max(1, len(trace))

        data.update(
            spikes=len(spikes),
            period=period,
            spike_max_ms=spike_max_ms,
            mean_all_us=mean_all,
            mean_healthy_us=mean_healthy,
            inflation=inflation,
            series=trace.series_us()[:1000],
            soft_flushes=bed.nfs.stats.soft_flushes,
        )

        comparison.add(
            "periodic multi-ms spikes present",
            len(spikes) >= 3 and period is not None,
            paper="spikes ~every 85 calls",
            measured=f"{len(spikes)} spikes, period {period:.0f} calls"
            if period
            else f"{len(spikes)} spikes",
        )
        comparison.add(
            "spike latency in the tens of milliseconds",
            spike_max_ms > 10,
            paper=">19 ms",
            measured=f"max {spike_max_ms:.1f} ms",
        )
        comparison.add(
            "spikes are rare",
            0.002 <= spike_fraction <= 0.05,
            paper="37/2560 calls (1.4%)",
            measured=f"{len(spikes)}/{len(trace)} ({100 * spike_fraction:.1f}%)",
        )
        comparison.add(
            "spikes inflate the mean severely",
            inflation >= 2.0,
            paper="482.1 vs 139.6 us (3.45x)",
            measured=f"{mean_all:.0f} vs {mean_healthy:.0f} us ({inflation:.2f}x)",
        )
        comparison.add(
            "spikes caused by MAX_REQUEST_SOFT flushes",
            bed.nfs.stats.soft_flushes == len(spikes),
            paper="flush of the inode's request queue (~192 requests)",
            measured=f"{bed.nfs.stats.soft_flushes} soft flushes vs "
            f"{len(spikes)} spikes",
        )
        # "The latency spikes do not appear in write requests on the
        # wire" (§3.3): during the flush the wire is busy draining, so
        # inter-send gaps stay small even while a write() call stalls
        # for 20 ms.  Wire silence during a filer *checkpoint* pause is
        # a different (server-side) phenomenon — exclude those windows.
        write_phase_end = trace.starts_ns[-1] + trace.latencies_ns[-1]
        cp_windows = getattr(bed.server, "checkpoint_windows", [])

        def in_checkpoint(gap_start: int, gap_end: int) -> bool:
            slack = 2_000_000  # the stall extends slightly past the pause
            return any(
                gap_start < end + slack and gap_end > begin - slack
                for begin, end in cp_windows
            )

        sends = [t for t in bed.nfs.xprt.send_times if t <= write_phase_end]
        gaps = [
            (a, b)
            for a, b in zip(sends, sends[1:])
            if not in_checkpoint(a, b)
        ]
        wire_gap_ms = max((b - a for a, b in gaps), default=0) / 1e6
        comparison.add(
            "spikes absent from the wire",
            wire_gap_ms < spike_max_ms / 2,
            paper="latency spikes do not appear in write requests on the wire",
            measured=f"max wire send gap {wire_gap_ms:.1f} ms vs "
            f"{spike_max_ms:.1f} ms syscall spike "
            f"({len(cp_windows)} checkpoint window(s) excluded)",
        )

        sample = ", ".join(
            f"#{i}={trace.latencies_ns[i] / NS_PER_MS:.1f}ms" for i in spikes[:6]
        )
        return (
            f"{file_mb} MB run, {len(trace)} write() calls.\n"
            f"mean {mean_all:.1f} us; excluding >1 ms: {mean_healthy:.1f} us "
            f"(inflation {inflation:.2f}x)\n"
            f"first spikes: {sample}"
        )
