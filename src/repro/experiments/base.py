"""Experiment framework.

Each experiment reproduces one table or figure: it builds the test beds,
runs the workload, renders a text report (curves, histograms, traces),
and grades itself against *shape criteria* — the qualitative facts the
paper's artefact shows.  Absolute numbers are recorded for the report
but graded loosely; shapes are graded strictly (see DESIGN.md §1).
"""

from __future__ import annotations

import csv
import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence

from ..analysis import Comparison
from ..cache import ResultCache
from ..config import ClientHwConfig, FilerConfig, scaled
from ..errors import ConfigError
from ..parallel import SweepExecutor

__all__ = [
    "Experiment",
    "ExperimentResult",
    "ExecutionContext",
    "scaled_configs",
    "format_table",
    "export_result",
]


@dataclass
class ExecutionContext:
    """How an experiment's sweep points should be executed.

    ``jobs`` is the process-pool width (1 = in-process serial), ``cache``
    an optional :class:`~repro.cache.ResultCache`.  The defaults
    reproduce the historical behaviour: serial, uncached.  Execution
    mode never changes results — every point is an independent
    deterministic simulation — only wall-clock time.
    """

    jobs: int = 1
    cache: Optional[ResultCache] = None

    def executor(self) -> SweepExecutor:
        return SweepExecutor(jobs=self.jobs, cache=self.cache)


@dataclass
class ExperimentResult:
    """Everything one experiment run produced."""

    experiment_id: str
    title: str
    comparison: Comparison
    #: Raw numbers for downstream analysis/plotting.
    data: Dict[str, Any] = field(default_factory=dict)
    #: Human-readable report (tables/histograms/trace excerpts).
    text: str = ""

    @property
    def passed(self) -> bool:
        return self.comparison.all_passed

    def render(self) -> str:
        parts = [f"### {self.experiment_id}: {self.title}"]
        if self.text:
            parts.append(self.text)
        parts.append(self.comparison.render())
        return "\n\n".join(parts)


class Experiment:
    """Base class: subclasses set the metadata and implement _run."""

    id: str = ""
    title: str = ""
    paper_ref: str = ""
    #: Execution context of the current run (set by :meth:`run`); sweep
    #: experiments read it to parallelise/cache their points.
    context: ExecutionContext = ExecutionContext()

    def run(
        self,
        scale: float = 4.0,
        quick: bool = False,
        context: Optional[ExecutionContext] = None,
    ) -> ExperimentResult:
        """Execute the experiment.

        ``scale`` shrinks client memory (and the filer's NVRAM) for the
        file-size sweeps per DESIGN.md §5; experiments that run at the
        paper's exact sizes ignore it.  ``quick`` reduces sizes/points
        for CI-speed runs while preserving every shape criterion.
        ``context`` selects parallel/cached sweep execution; experiments
        that are not sweeps ignore it.
        """
        if scale <= 0:
            raise ConfigError("scale must be positive")
        self.context = context or ExecutionContext()
        comparison = Comparison(f"{self.id}: {self.title}")
        data: Dict[str, Any] = {}
        text = self._run(comparison, data, scale=scale, quick=quick)
        return ExperimentResult(
            experiment_id=self.id,
            title=self.title,
            comparison=comparison,
            data=data,
            text=text,
        )

    def _run(self, comparison: Comparison, data: Dict[str, Any], scale: float, quick: bool) -> str:
        raise NotImplementedError  # pragma: no cover


def scaled_configs(scale: float):
    """(ClientHwConfig, FilerConfig) shrunk by ``scale``."""
    hw = scaled(ClientHwConfig(), scale)
    filer = FilerConfig(nvram_bytes=max(2_000_000, int(FilerConfig().nvram_bytes / scale)))
    return hw, filer


def export_result(result: ExperimentResult, directory: str) -> List[str]:
    """Dump an experiment's data for external plotting.

    Writes ``<id>_report.txt`` (the rendered report), ``<id>_data.json``
    (everything serialisable in ``result.data``), and — when the data
    contains the standard shapes — CSV files: latency series
    (Figs. 2-4) and throughput curves (Figs. 1/7).  Returns the paths.
    """
    os.makedirs(directory, exist_ok=True)
    paths = []

    def path_for(suffix: str) -> str:
        p = os.path.join(directory, f"{result.experiment_id}_{suffix}")
        paths.append(p)
        return p

    with open(path_for("report.txt"), "w") as f:
        f.write(result.render() + "\n")
    with open(path_for("data.json"), "w") as f:
        json.dump(result.data, f, indent=2, default=str)

    series = result.data.get("series")
    if isinstance(series, list) and series and isinstance(series[0], tuple):
        with open(path_for("latency.csv"), "w", newline="") as f:
            writer = csv.writer(f)
            writer.writerow(["call", "latency_us"])
            writer.writerows(series)

    sizes = result.data.get("sizes_mb")
    if isinstance(sizes, list):
        curve_names = [
            k for k, v in result.data.items()
            if k != "sizes_mb" and isinstance(v, list) and len(v) == len(sizes)
        ]
        if curve_names:
            with open(path_for("curves.csv"), "w", newline="") as f:
                writer = csv.writer(f)
                writer.writerow(["size_mb"] + curve_names)
                for i, size in enumerate(sizes):
                    writer.writerow(
                        [size] + [result.data[name][i] for name in curve_names]
                    )
    return paths


def format_table(
    headers: Sequence[str], rows: Sequence[Sequence[Any]], precision: int = 1
) -> str:
    """Fixed-width text table."""

    def fmt(value: Any) -> str:
        if isinstance(value, float):
            return f"{value:.{precision}f}"
        return str(value)

    grid = [list(map(fmt, row)) for row in rows]
    widths = [
        max(len(headers[col]), *(len(row[col]) for row in grid)) if grid else len(headers[col])
        for col in range(len(headers))
    ]
    lines = [
        "  ".join(h.rjust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in grid:
        lines.append("  ".join(cell.rjust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)
