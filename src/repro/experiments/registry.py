"""Registry of all reproduced artefacts."""

from __future__ import annotations

from typing import Dict, List, Type

from ..errors import ConfigError
from .base import Experiment
from .figure1 import Figure1
from .figure2 import Figure2
from .figure3 import Figure3
from .figure4 import Figure4
from .figure5 import Figure5
from .figure6 import Figure6
from .figure7 import Figure7
from .fleet import Fleet
from .scale import Scale
from .table1 import Table1

__all__ = ["EXPERIMENTS", "get_experiment", "experiment_ids"]

_CLASSES: List[Type[Experiment]] = [
    Figure1,
    Figure2,
    Figure3,
    Figure4,
    Figure5,
    Figure6,
    Table1,
    Figure7,
    Fleet,
    Scale,
]

EXPERIMENTS: Dict[str, Type[Experiment]] = {cls.id: cls for cls in _CLASSES}


def experiment_ids() -> List[str]:
    return [cls.id for cls in _CLASSES]


def get_experiment(experiment_id: str) -> Experiment:
    try:
        return EXPERIMENTS[experiment_id]()
    except KeyError:
        known = ", ".join(experiment_ids())
        raise ConfigError(
            f"unknown experiment {experiment_id!r} (known: {known})"
        ) from None
