"""Figure 4: hash-table index — latency flat; a mid-run low-jitter gap.

Paper: 100 MB on the filer with the hash table.  Mean 136.9 µs — the
same as the stock client's healthy (spike-free) mean — and sustained
memory throughput ~4x Figure 1's.  A few hundred calls in the middle
show much lower jitter: the filer stalls during a WAFL checkpoint,
briefly behaving "like an infinitely slow server" and removing SMP lock
contention (§3.5).
"""

from __future__ import annotations

from ..analysis import Comparison, windowed_jitter
from ..bench import TestBed
from ..units import MB, NS_PER_MS, to_us
from .base import Experiment

__all__ = ["Figure4"]

FILE_MB = 100
WINDOW = 400


class Figure4(Experiment):
    id = "fig4"
    title = "Hash-table index: flat latency + checkpoint gap"
    paper_ref = "Figure 4, §3.4"

    def _run(self, comparison: Comparison, data, scale: float, quick: bool) -> str:
        file_mb = 30 if quick else FILE_MB
        server = None
        if quick:
            # Shrink NVRAM so the shorter run still crosses a checkpoint.
            from ..config import FilerConfig
            from ..topology import ServerSpec

            server = ServerSpec("netapp", FilerConfig(nvram_bytes=8 * MB))
        bed = TestBed(target="netapp", client="hashtable", server=server)
        result = bed.run_sequential_write(file_mb * MB)
        trace = result.trace

        slope = trace.growth_slope_ns_per_call(skip_first=1)
        spikes = trace.count_above(5 * NS_PER_MS)
        mean_us = to_us(trace.mean_ns(skip_first=1))

        # Reference runs: the stock client's healthy mean and throughput.
        ref = TestBed(target="netapp", client="stock")
        ref_result = ref.run_sequential_write(file_mb * MB)
        ref_healthy_us = to_us(ref_result.trace.mean_ns(exclude_above_ns=NS_PER_MS))
        speedup = result.write_mbps / ref_result.write_mbps

        # The low-jitter gap: windows of unusually calm latency that
        # overlap a filer checkpoint pause.
        windows = windowed_jitter(trace.latencies_ns, WINDOW)
        jitters = [j for _s, j in windows]
        median_jitter = sorted(jitters)[len(jitters) // 2] if jitters else 0.0
        calm = [(s, j) for s, j in windows if j < 0.5 * median_jitter]
        cp_windows = bed.server.checkpoint_windows
        starts = trace.starts_ns

        def window_overlaps_cp(window_start_call: int) -> bool:
            lo = starts[window_start_call]
            hi_idx = min(window_start_call + WINDOW, len(starts) - 1)
            hi = starts[hi_idx]
            return any(not (end < lo or begin > hi) for begin, end in cp_windows)

        gap_matches_cp = any(window_overlaps_cp(s) for s, _j in calm)

        data.update(
            mean_us=mean_us,
            slope=slope,
            speedup_vs_stock=speedup,
            ref_healthy_us=ref_healthy_us,
            checkpoints=bed.server.checkpoints,
            calm_windows=calm,
            median_jitter_us=median_jitter / 1000,
        )

        comparison.add(
            "latency stays flat for the whole run",
            abs(slope) < 2.0 and spikes == 0,
            paper="flat at low latency for 100 MB",
            measured=f"slope {slope:.2f} ns/call, {spikes} spikes >5 ms",
        )
        comparison.add(
            "mean matches the stock client's spike-free mean",
            0.5 <= mean_us / ref_healthy_us <= 1.5,
            paper="136.9 vs 139.6 us",
            measured=f"{mean_us:.1f} vs {ref_healthy_us:.1f} us",
        )
        comparison.add(
            "sustained memory throughput several times the stock client's",
            speedup >= 2.5,
            paper="~115 vs 28 MBps (4.1x)",
            measured=f"{result.write_mbps:.0f} vs {ref_result.write_mbps:.0f} "
            f"MBps ({speedup:.1f}x)",
        )
        comparison.add(
            "mid-run low-jitter gap coincides with a filer checkpoint",
            bool(calm) and gap_matches_cp,
            paper="gap of reduced jitter during WAFL checkpoint",
            measured=f"{len(calm)} calm window(s), "
            f"{bed.server.checkpoints} checkpoint(s), overlap={gap_matches_cp}",
        )

        return (
            f"{file_mb} MB run: mean {mean_us:.1f} us, write throughput "
            f"{result.write_mbps:.0f} MBps ({speedup:.1f}x the stock client).\n"
            f"median window jitter {median_jitter / 1000:.1f} us; calm windows "
            f"at calls {[s for s, _ in calm]} with {bed.server.checkpoints} "
            f"checkpoint pause(s)."
        )
