"""``repro-nfs bench``: the repo's performance lane, as one JSON row.

Every PR in the perf trajectory appends a ``BENCH_<n>.json`` snapshot
so speedups (and regressions) are numbers in the tree, not anecdotes.
Four lanes, each measuring a layer the sweeps actually stress:

* **sim_core** — events/sec through the event loop on the dominant
  event shape (short self-rescheduling callback chains).
* **headline** — wall-clock of the paper's headline progression
  (stock vs fully-patched client, 30 MB vs the filer), plus the
  simulated improvement factor it reproduces.
* **fleet** — a 32-client fleet point against the filer: aggregate
  throughput, Jain's index, and the serial-vs-sharded wall-clock pair
  (``--shards 4``) with the bit-identity check that makes the sharded
  number meaningful.
* **cache** — warm hit rate of the content-addressed result cache over
  a small sweep re-run.

Simulated results are deterministic; the wall-clock fields are the only
machine-dependent numbers and are recorded alongside ``nproc`` so a
reader can judge the parallel-DES speedup in context (on a single-core
container the four shard workers timeshare one CPU and the crossover
sits above the machine, which the fleet lane documents explicitly).
"""

from __future__ import annotations

import json
import os
import sys
import tempfile
import time
from typing import Any, Dict, Optional

__all__ = ["run_bench", "bench_payload"]

#: Headline progression file size (the abstract's 30 MB point).
HEADLINE_MB = 30

#: Fleet lane shape: the acceptance point for the perf trajectory.
FLEET_CLIENTS = 32
FLEET_SHARDS = 4
FLEET_FILE_KIB = 1024


def _wall() -> float:
    # Wall-clock benchmarking of the host, never simulation input.
    return time.perf_counter()  # noqa: DET102


def _bench_sim_core(chains: int, events_per_chain: int) -> Dict[str, Any]:
    from ..sim import Simulator

    total = chains * events_per_chain
    best = None
    for _ in range(3):
        sim = Simulator()
        left = [events_per_chain] * chains

        def tick(i):
            left[i] -= 1
            if left[i]:
                sim.call_after(10 + i, tick, i)

        started = _wall()
        for i in range(chains):
            sim.call_after(i, tick, i)
        sim.run()
        elapsed = _wall() - started
        assert sim.events_processed == total and not any(left)
        best = elapsed if best is None else min(best, elapsed)
    return {
        "events": total,
        "events_per_second": round(total / best),
    }


def _bench_headline(file_mb: int) -> Dict[str, Any]:
    from ..bench.runner import TestBed
    from ..units import MB

    started = _wall()
    mbps = {}
    for variant in ("stock", "nolock"):
        bed = TestBed(target="netapp", client=variant)
        result = bed.run_sequential_write(file_mb * MB)
        mbps[variant] = result.write_mbps
    elapsed = _wall() - started
    return {
        "file_mb": file_mb,
        "stock_mbps": round(mbps["stock"], 2),
        "patched_mbps": round(mbps["nolock"], 2),
        "improvement_x": round(mbps["nolock"] / mbps["stock"], 2),
        "wall_s": round(elapsed, 3),
    }


def _bench_fleet(clients: int, shards: int, file_kib: int) -> Dict[str, Any]:
    from ..parallel.des import run_sharded_fleet
    from ..topology import FleetJobSpec, run_fleet_job
    from ..units import KIB

    spec = FleetJobSpec.homogeneous(
        clients, target="netapp", file_bytes=file_kib * KIB
    )
    started = _wall()
    serial = run_fleet_job(spec)
    serial_wall = _wall() - started

    started = _wall()
    sharded = run_sharded_fleet(spec, shards=shards).point
    sharded_wall = _wall() - started

    identical = sharded.run_fingerprint() == serial.run_fingerprint()
    speedup = serial_wall / sharded_wall
    nproc = os.cpu_count() or 1
    row = {
        "clients": clients,
        "shards": shards,
        "file_kib": file_kib,
        "aggregate_mbps": round(serial.aggregate_mbps, 2),
        "jain": round(serial.fairness, 4),
        "events": serial.events_processed,
        "serial_wall_s": round(serial_wall, 3),
        "sharded_wall_s": round(sharded_wall, 3),
        "speedup_x": round(speedup, 2),
        "fingerprints_identical": identical,
        "nproc": nproc,
    }
    if nproc < shards and speedup < 2.0:
        # The acceptance target (>= 2x at 32 clients / 4 shards) needs
        # the shard workers on their own cores.  With nproc < shards
        # they timeshare, adding IPC cost on top of the serial work, so
        # the parallel crossover sits above this machine entirely.
        row["crossover_note"] = (
            f"nproc={nproc} < shards={shards}: worker processes timeshare "
            "the cores, so sharding pays pipe/pickle overhead with no "
            "concurrent execution to amortise it; the >=2x crossover "
            "requires >= shards physical cores"
        )
    return row


def _bench_cache() -> Dict[str, Any]:
    from ..parallel.executor import JobSpec, SweepExecutor
    from ..cache import ResultCache
    from ..units import KIB

    specs = [
        JobSpec(target="netapp", client="stock", file_bytes=n * 256 * KIB)
        for n in (1, 2, 3, 4)
    ]
    with tempfile.TemporaryDirectory() as tmp:
        cache = ResultCache(tmp)
        executor = SweepExecutor(jobs=1, cache=cache)
        cold = executor.map(specs)
        cold_misses = cache.misses
        started = _wall()
        warm = executor.map(specs)
        warm_wall = _wall() - started
        warm_hits = cache.hits
    assert [p.to_payload() for p in cold] == [p.to_payload() for p in warm]
    return {
        "points": len(specs),
        "cold_misses": cold_misses,
        "warm_hits": warm_hits,
        "warm_hit_rate": round(warm_hits / len(specs), 3),
        "warm_wall_s": round(warm_wall, 3),
    }


def bench_payload(quick: bool = False) -> Dict[str, Any]:
    """Run every lane; returns the JSON-ready payload."""
    if quick:
        sim_core = _bench_sim_core(16, 500)
        headline = _bench_headline(4)
        fleet = _bench_fleet(8, 2, 256)
    else:
        sim_core = _bench_sim_core(64, 2_000)
        headline = _bench_headline(HEADLINE_MB)
        fleet = _bench_fleet(FLEET_CLIENTS, FLEET_SHARDS, FLEET_FILE_KIB)
    return {
        "bench": "repro-nfs",
        "quick": quick,
        "nproc": os.cpu_count() or 1,
        "python": sys.version.split()[0],
        "sim_core": sim_core,
        "headline": headline,
        "fleet": fleet,
        "cache": _bench_cache(),
    }


def run_bench(
    json_path: Optional[str] = None, quick: bool = False, out=None
) -> int:
    """``repro-nfs bench``: print the lanes; ``--json`` writes the row."""
    if out is None:
        out = sys.stdout
    payload = bench_payload(quick=quick)
    sim_core, headline = payload["sim_core"], payload["headline"]
    fleet, cache = payload["fleet"], payload["cache"]
    out.write(
        f"sim core   {sim_core['events_per_second']:>12,} events/s "
        f"({sim_core['events']:,} events)\n"
    )
    out.write(
        f"headline   {headline['wall_s']:>10.2f} s wall   "
        f"stock {headline['stock_mbps']:.1f} -> patched "
        f"{headline['patched_mbps']:.1f} MBps "
        f"({headline['improvement_x']:.1f}x)\n"
    )
    out.write(
        f"fleet      {fleet['aggregate_mbps']:>8.1f} MBps aggregate, "
        f"Jain {fleet['jain']:.4f} "
        f"({fleet['clients']} clients)\n"
    )
    out.write(
        f"           serial {fleet['serial_wall_s']:.2f} s vs "
        f"{fleet['shards']} shards {fleet['sharded_wall_s']:.2f} s "
        f"({fleet['speedup_x']:.2f}x, nproc={fleet['nproc']}, "
        f"fingerprints {'identical' if fleet['fingerprints_identical'] else 'DIVERGED'})\n"
    )
    if "crossover_note" in fleet:
        out.write(f"           note: {fleet['crossover_note']}\n")
    out.write(
        f"cache      {cache['warm_hit_rate']:.0%} warm hit rate "
        f"({cache['warm_hits']}/{cache['points']} points, "
        f"warm replay {cache['warm_wall_s']*1e3:.0f} ms)\n"
    )
    if json_path:
        with open(json_path, "w") as f:
            json.dump(payload, f, indent=2, sort_keys=True)
            f.write("\n")
        out.write(f"wrote {json_path}\n")
    return 0 if fleet["fingerprints_identical"] else 1
