"""Experiment reproductions of the paper's tables and figures."""

from .base import Experiment, ExperimentResult, format_table, scaled_configs
from .registry import EXPERIMENTS, experiment_ids, get_experiment

__all__ = [
    "Experiment",
    "ExperimentResult",
    "EXPERIMENTS",
    "experiment_ids",
    "get_experiment",
    "scaled_configs",
    "format_table",
]
