"""Experiment reproductions of the paper's tables and figures."""

from .base import (
    ExecutionContext,
    Experiment,
    ExperimentResult,
    format_table,
    scaled_configs,
)
from .registry import EXPERIMENTS, experiment_ids, get_experiment

__all__ = [
    "Experiment",
    "ExperimentResult",
    "ExecutionContext",
    "EXPERIMENTS",
    "experiment_ids",
    "get_experiment",
    "scaled_configs",
    "format_table",
]
