"""Fleet: multi-client scaling against one server.

The paper's single-client finding — "NFS memory write throughput
remains constrained to network/server throughput" (§3.2, §3.5) — has a
fleet-level corollary: adding clients cannot add server throughput.
This experiment sweeps client count against the filer and the Linux
knfsd, checking that aggregate throughput saturates at the server's
ingest rate (~38 / ~26 MBps) instead of scaling linearly, and that the
FIFO ingest station shares it fairly (Jain's index ≈ 1 for identical
clients) while per-client p99 write latency grows with contention.
"""

from __future__ import annotations

from typing import List

from ..analysis import Comparison
from ..topology import FleetJobSpec
from ..units import KIB
from .base import Experiment, format_table

__all__ = ["Fleet"]

#: Client counts swept per target.
FULL_COUNTS = (1, 2, 4, 8, 16, 32)
QUICK_COUNTS = (1, 2, 4, 8)

#: Per-client file size (every client writes its own file).
FULL_FILE_BYTES = 1024 * KIB
QUICK_FILE_BYTES = 384 * KIB

#: Target -> the MBps bound fleet aggregate (measured through fsync and
#: close) should pin to.  The filer commits into NVRAM, so its bound is
#: the ~38 MBps ingest rate itself; the knfsd's COMMIT forces the lone
#: disk (~25 MBps) after ingest (~26 MBps), and the two serial passes
#: compose to ~12.7 MBps end-to-end.
TARGET_BOUNDS = {
    "netapp": 38.0,
    "linux": 26.0 * 25.0 / (26.0 + 25.0),
}


class Fleet(Experiment):
    id = "fleet"
    title = "Multi-client scaling: aggregate pinned to server speed"
    paper_ref = "§3.2/§3.5 corollary"

    def _run(self, comparison: Comparison, data, scale: float, quick: bool) -> str:
        counts = QUICK_COUNTS if quick else FULL_COUNTS
        file_bytes = QUICK_FILE_BYTES if quick else FULL_FILE_BYTES
        targets = sorted(TARGET_BOUNDS)

        specs = [
            FleetJobSpec.homogeneous(count, target=target, file_bytes=file_bytes)
            for target in targets
            for count in counts
        ]
        results = self.context.executor().map(specs)

        data["counts"] = list(counts)
        rows: List[tuple] = []
        for t, target in enumerate(targets):
            points = results[t * len(counts) : (t + 1) * len(counts)]
            aggregate = [p.aggregate_mbps for p in points]
            fairness = [p.fairness for p in points]
            p99_us = [max(p.client_p99_us()) for p in points]
            finish_ms = [
                max(c["close_elapsed_ns"] for c in p.clients) / 1e6
                for p in points
            ]
            data[f"{target}_aggregate_mbps"] = aggregate
            data[f"{target}_jain"] = fairness
            data[f"{target}_p99_us"] = p99_us
            data[f"{target}_finish_ms"] = finish_ms
            for count, agg, jain, p99, fin in zip(
                counts, aggregate, fairness, p99_us, finish_ms
            ):
                rows.append((target, count, agg, jain, p99, fin))

            bound = TARGET_BOUNDS[target]
            comparison.add(
                f"aggregate saturates at server ingest rate ({target})",
                0.55 * bound <= aggregate[-1] <= 1.1 * bound,
                paper=f"~{bound:.0f} MBps network/server bound",
                measured=f"{aggregate[-1]:.1f} MBps at {counts[-1]} clients",
            )
            comparison.add(
                f"scaling is sublinear — clients add no throughput ({target})",
                aggregate[-1] < 2.0 * aggregate[0],
                paper="server speed, not client count, sets the ceiling",
                measured=f"{counts[-1]}x clients -> "
                f"{aggregate[-1] / aggregate[0]:.2f}x throughput",
            )
            comparison.add(
                f"FIFO ingest shares fairly across identical clients ({target})",
                min(fairness) >= 0.95,
                paper="no per-client scheduler; fairness is emergent",
                measured=f"Jain min {min(fairness):.3f}",
            )
            # Contention shows up as completion time, not write() p99:
            # writes absorb into each client's own page cache; the
            # shared server makes everyone's flush take N times longer.
            comparison.add(
                f"per-client completion stretches with fleet size ({target})",
                finish_ms[-1] > 2.0 * finish_ms[0],
                paper="a shared server divides its speed among clients",
                measured=f"finish {finish_ms[0]:.1f} -> {finish_ms[-1]:.1f} ms "
                f"at {counts[-1]} clients",
            )

        table = format_table(
            ["target", "clients", "aggregate MBps", "Jain", "worst p99 us", "finish ms"],
            rows,
            precision=2,
        )
        return (
            f"Each client writes its own {file_bytes // KIB} KiB file, all "
            "concurrently, through one switch.\n" + table
        )
