"""Figure 3: flush limits removed — spikes gone, latency grows.

Paper: 100 MB file on the filer, threshold flushing removed but the
sorted request list retained.  The periodic spikes disappear, yet the
mean does not improve (484.7 µs for 6400 calls... the paper's run, twice
ours per call count, since every call scans the whole list): latency
climbs as outstanding requests accumulate.  Profiling fingers
``nfs_find_request``/``nfs_update_request`` (§3.4).
"""

from __future__ import annotations

from ..analysis import Comparison, linear_slope, mean
from ..bench import TestBed
from ..units import MB, NS_PER_MS, to_us, us
from .base import Experiment

__all__ = ["Figure3"]

FILE_MB = 100


class Figure3(Experiment):
    id = "fig3"
    title = "No-flush client: latency grows over time (list scans)"
    paper_ref = "Figure 3, §3.3-3.4"

    def _run(self, comparison: Comparison, data, scale: float, quick: bool) -> str:
        file_mb = 20 if quick else FILE_MB
        bed = TestBed(target="netapp", client="noflush", profile=True)
        result = bed.run_sequential_write(file_mb * MB)
        trace = result.trace
        lats = trace.latencies_ns

        n = len(lats)
        early = to_us(mean(lats[5:261]))
        late = to_us(mean(lats[-max(1, n // 10):]))
        slope = trace.growth_slope_ns_per_call(skip_first=5)
        # Slope over the first half: past the midpoint the queue settles
        # into the drain equilibrium (per-call latency = the server's
        # per-RPC interarrival) and the curve plateaus — see the
        # EXPERIMENTS.md fig3 note on this divergence from the paper.
        slope_first_half = linear_slope(lats[5 : max(6, n // 2)])
        big_spikes = trace.count_above(5 * NS_PER_MS)
        profile = bed.profiler.top(6)
        profile_labels = [label for label, _count in profile]
        index_hot = any(
            label in ("nfs_find_request", "nfs_update_request", "nfs_request_insert")
            for label in profile_labels[:3]
        )

        data.update(
            early_us=early,
            late_us=late,
            slope_ns_per_call=slope,
            mean_us=to_us(trace.mean_ns()),
            profile=profile,
            outstanding_end=bed.nfs.live_requests,
        )

        comparison.add(
            "periodic flush spikes eliminated",
            big_spikes == 0,
            paper="spikes gone (Fig. 3 vs Fig. 2)",
            measured=f"{big_spikes} calls above 5 ms",
        )
        comparison.add(
            "latency grows as requests accumulate",
            slope_first_half > 3.0 and late >= 1.4 * early,
            paper="latency climbs across the run",
            measured=f"early {early:.0f} us -> late {late:.0f} us "
            f"(first-half slope {slope_first_half:.1f} ns/call)",
        )
        comparison.add(
            "mean latency does not improve vs stock",
            late > 100,
            paper="mean 484.7 us, no better than 482.1",
            measured=f"run mean {to_us(trace.mean_ns()):.0f} us "
            f"(late-run {late:.0f} us)",
        )
        comparison.add(
            "profiler blames the request-list scans",
            index_hot,
            paper="nfs_find_request/nfs_update_request top CPU consumers",
            measured=f"top labels: {', '.join(profile_labels[:3])}",
        )

        return (
            f"{file_mb} MB run, {n} calls; outstanding requests at end of "
            f"write phase ~{bed.nfs.live_requests}.\n"
            f"latency early {early:.0f} us -> late {late:.0f} us; "
            f"kernel profile (samples): "
            + ", ".join(f"{l}={c}" for l, c in profile[:4])
        )
