"""Per-call latency traces.

The paper's central instrument: "to get to the heart of system call
misbehavior, it is sometimes necessary to record actual, and not
average latency" (§2.3).  A trace records every call's start time and
duration, supporting the actual-latency plots (Figs. 2-4), histograms
(Figs. 5-6), and the outlier-excluded means quoted throughout §3.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from ..analysis.stats import percentile_of_sorted
from ..units import NS_PER_MS, to_us

__all__ = ["LatencyTrace"]


class LatencyTrace:
    """Start/end pairs for one syscall stream."""

    def __init__(self) -> None:
        self._starts: List[int] = []
        self._latencies: List[int] = []

    def record(self, start_ns: int, end_ns: int) -> None:
        self._starts.append(start_ns)
        self._latencies.append(end_ns - start_ns)

    # -- access -----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._latencies)

    @property
    def latencies_ns(self) -> List[int]:
        return list(self._latencies)

    @property
    def starts_ns(self) -> List[int]:
        return list(self._starts)

    def series_us(self) -> List[Tuple[int, float]]:
        """(call number, latency µs) pairs — the axes of Figs. 2-4."""
        return [(i, to_us(lat)) for i, lat in enumerate(self._latencies)]

    # -- statistics --------------------------------------------------------

    def mean_ns(self, exclude_above_ns: Optional[int] = None, skip_first: int = 0) -> float:
        """Mean latency, optionally excluding outliers and warm-up calls.

        The paper excludes calls above 1 ms when quoting the "healthy"
        mean (§3.3) and drops the first data point in §3.5's comparison.
        """
        values = self._latencies[skip_first:]
        if exclude_above_ns is not None:
            values = [v for v in values if v <= exclude_above_ns]
        if not values:
            return 0.0
        return sum(values) / len(values)

    def max_ns(self, skip_first: int = 0) -> int:
        values = self._latencies[skip_first:]
        return max(values) if values else 0

    def min_ns(self) -> int:
        return min(self._latencies) if self._latencies else 0

    def count_above(self, threshold_ns: int) -> int:
        return sum(1 for v in self._latencies if v > threshold_ns)

    def spikes(self, threshold_ns: int = NS_PER_MS) -> List[int]:
        """Indices of calls slower than ``threshold_ns`` (default 1 ms)."""
        return [i for i, v in enumerate(self._latencies) if v > threshold_ns]

    def spike_period(self, threshold_ns: int = NS_PER_MS) -> Optional[float]:
        """Mean calls between spikes, or None with fewer than two spikes."""
        spikes = self.spikes(threshold_ns)
        if len(spikes) < 2:
            return None
        gaps = [b - a for a, b in zip(spikes, spikes[1:])]
        return sum(gaps) / len(gaps)

    def growth_slope_ns_per_call(self, skip_first: int = 0) -> float:
        """Least-squares slope of latency vs call number.

        Positive slope is Fig. 3's signature (list traversal grows with
        outstanding requests); ~zero is Fig. 4's (hash table).
        """
        ys = self._latencies[skip_first:]
        n = len(ys)
        if n < 2:
            return 0.0
        xs = range(n)
        mean_x = (n - 1) / 2
        mean_y = sum(ys) / n
        cov = sum((x - mean_x) * (y - mean_y) for x, y in zip(xs, ys))
        var = sum((x - mean_x) ** 2 for x in xs)
        return cov / var

    def percentile_ns(self, pct: float, skip_first: int = 0) -> int:
        """Nearest-rank percentile of latency (``pct`` in (0, 100])."""
        values = sorted(self._latencies[skip_first:])
        return percentile_of_sorted(values, pct, method="nearest-rank")

    def percentiles_ns(
        self, pcts: Tuple[float, ...] = (50, 90, 99), skip_first: int = 0
    ) -> "dict":
        """Several nearest-rank percentiles from one sort."""
        values = sorted(self._latencies[skip_first:])
        return {
            pct: percentile_of_sorted(values, pct, method="nearest-rank")
            for pct in pcts
        }

    def jitter_ns(self, exclude_above_ns: Optional[int] = None) -> float:
        """Standard deviation of latency — the paper's "jitter"."""
        values = self._latencies
        if exclude_above_ns is not None:
            values = [v for v in values if v <= exclude_above_ns]
        n = len(values)
        if n < 2:
            return 0.0
        mean = sum(values) / n
        return (sum((v - mean) ** 2 for v in values) / (n - 1)) ** 0.5
