"""Benchmark harness: Bonnie-derived workload, traces, histograms."""

from .bonnie import BenchmarkResult, SequentialWriteBenchmark
from .histogram import (
    PAPER_BIN_WIDTH_NS,
    PAPER_MAX_NS,
    Histogram,
    latency_histogram,
)
from .latency import LatencyTrace
from .runner import SERVER_KINDS, TestBed

__all__ = [
    "BenchmarkResult",
    "SequentialWriteBenchmark",
    "LatencyTrace",
    "Histogram",
    "latency_histogram",
    "PAPER_BIN_WIDTH_NS",
    "PAPER_MAX_NS",
    "TestBed",
    "SERVER_KINDS",
]
