"""Benchmark harness: Bonnie-derived workload, traces, histograms."""

from .bonnie import BenchmarkResult, SequentialWriteBenchmark
from .histogram import (
    PAPER_BIN_WIDTH_NS,
    PAPER_MAX_NS,
    Histogram,
    latency_histogram,
)
from .latency import LatencyTrace
from .runner import SERVER_KINDS, TestBed
from .workloads import (
    Workload,
    WorkloadOutcome,
    WorkloadResult,
    get_workload,
    register_workload,
    workload_names,
)

__all__ = [
    "BenchmarkResult",
    "SequentialWriteBenchmark",
    "LatencyTrace",
    "Histogram",
    "latency_histogram",
    "PAPER_BIN_WIDTH_NS",
    "PAPER_MAX_NS",
    "TestBed",
    "SERVER_KINDS",
    "Workload",
    "WorkloadOutcome",
    "WorkloadResult",
    "register_workload",
    "get_workload",
    "workload_names",
]
