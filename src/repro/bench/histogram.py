"""Latency histograms (Figs. 5 and 6).

The paper bins write() latency in 0.06 ms buckets from 0 to ~0.5 ms;
:func:`latency_histogram` reproduces that view and renders it as text.
"""

from __future__ import annotations

from typing import List, Sequence

from ..units import us

__all__ = ["Histogram", "latency_histogram", "PAPER_BIN_WIDTH_NS", "PAPER_MAX_NS"]

#: Fig. 5/6 bin width: 0.06 ms.
PAPER_BIN_WIDTH_NS = us(60)
#: Fig. 5/6 x-axis extent: 0.48 ms (overflow collected beyond it).
PAPER_MAX_NS = us(480)


class Histogram:
    """Fixed-width binned counts with an overflow bucket."""

    def __init__(self, bin_width_ns: int, max_ns: int):
        if bin_width_ns <= 0 or max_ns <= 0 or max_ns % bin_width_ns:
            raise ValueError("max_ns must be a positive multiple of bin_width_ns")
        self.bin_width_ns = bin_width_ns
        self.max_ns = max_ns
        self.counts: List[int] = [0] * (max_ns // bin_width_ns)
        self.overflow = 0
        self.total = 0

    def add(self, value_ns: int) -> None:
        self.total += 1
        if value_ns >= self.max_ns:
            self.overflow += 1
            return
        self.counts[value_ns // self.bin_width_ns] += 1

    def add_all(self, values_ns: Sequence[int]) -> None:
        for value in values_ns:
            self.add(value)

    def bin_edges_ms(self) -> List[float]:
        """Lower edges in milliseconds, as the paper labels them."""
        return [i * self.bin_width_ns / 1e6 for i in range(len(self.counts))]

    def mode_bin_ms(self) -> float:
        """Lower edge of the most populated bin."""
        idx = max(range(len(self.counts)), key=lambda i: self.counts[i])
        return idx * self.bin_width_ns / 1e6

    def tail_fraction(self, from_ns: int) -> float:
        """Fraction of samples at or above ``from_ns``."""
        if self.total == 0:
            return 0.0
        start_bin = from_ns // self.bin_width_ns
        tail = sum(self.counts[start_bin:]) + self.overflow
        return tail / self.total

    def render(self, label: str = "", width: int = 50) -> str:
        """ASCII rendering in the style of the paper's bar charts."""
        peak = max(max(self.counts), self.overflow, 1)
        lines = [f"Latency histogram {label}".rstrip()]
        for i, count in enumerate(self.counts):
            edge_ms = i * self.bin_width_ns / 1e6
            bar = "#" * max(0, round(count / peak * width))
            lines.append(f"{edge_ms:5.2f} ms |{bar:<{width}}| {count}")
        bar = "#" * max(0, round(self.overflow / peak * width))
        lines.append(f" >{self.max_ns / 1e6:4.2f} ms |{bar:<{width}}| {self.overflow}")
        return "\n".join(lines)


def latency_histogram(
    latencies_ns: Sequence[int],
    bin_width_ns: int = PAPER_BIN_WIDTH_NS,
    max_ns: int = PAPER_MAX_NS,
) -> Histogram:
    """Bin a latency trace the way Figs. 5/6 do."""
    hist = Histogram(bin_width_ns, max_ns)
    hist.add_all(latencies_ns)
    return hist
