"""The paper's benchmark: Bonnie's block-sequential-write test, refined.

Writes fixed-size chunks (8 KB, Bonnie's block size) into a fresh file,
then flushes, then closes.  Per §2.3 it reports **three** cumulative
throughput figures — writes only, through the flush, and through the
close — because NFS flushes completely before last close while local
file systems may not; and it records actual per-call latency, the
paper's key diagnostic.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from ..errors import ConfigError
from ..kernel.syscalls import SyscallLayer
from ..kernel.vfs import VfsFile
from ..units import throughput, to_mbps
from .latency import LatencyTrace

__all__ = ["BenchmarkResult", "SequentialWriteBenchmark"]


@dataclass
class BenchmarkResult:
    """Cumulative timings and the latency trace of one run."""

    file_bytes: int
    chunk_bytes: int
    #: Elapsed ns from benchmark start until after the last write().
    write_elapsed_ns: int = 0
    #: ... until after the fsync() (equals write_elapsed_ns if skipped).
    flush_elapsed_ns: int = 0
    #: ... until after the close().
    close_elapsed_ns: int = 0
    trace: LatencyTrace = field(default_factory=LatencyTrace)

    @property
    def write_throughput(self) -> float:
        """Bytes/second counting write() calls only (Figs. 1 and 7)."""
        return throughput(self.file_bytes, self.write_elapsed_ns)

    @property
    def flush_throughput(self) -> float:
        return throughput(self.file_bytes, self.flush_elapsed_ns)

    @property
    def close_throughput(self) -> float:
        return throughput(self.file_bytes, self.close_elapsed_ns)

    @property
    def write_mbps(self) -> float:
        return to_mbps(self.write_throughput)

    @property
    def flush_mbps(self) -> float:
        return to_mbps(self.flush_throughput)

    @property
    def close_mbps(self) -> float:
        return to_mbps(self.close_throughput)

    def summary(self) -> str:
        return (
            f"{self.file_bytes / 1e6:.0f} MB in {self.chunk_bytes} B chunks: "
            f"write {self.write_mbps:.1f} MBps, "
            f"flush {self.flush_mbps:.1f} MBps, "
            f"close {self.close_mbps:.1f} MBps "
            f"({len(self.trace)} calls)"
        )


class SequentialWriteBenchmark:
    """Drives a file through the syscall layer and measures."""

    def __init__(
        self,
        syscalls: SyscallLayer,
        chunk_bytes: int = 8192,
        do_fsync: bool = True,
    ):
        if chunk_bytes <= 0:
            raise ConfigError("chunk_bytes must be positive")
        self.syscalls = syscalls
        self.chunk_bytes = chunk_bytes
        self.do_fsync = do_fsync

    def run(self, file: VfsFile, file_bytes: int):
        """Generator: the benchmark body.  Returns a BenchmarkResult."""
        if file_bytes <= 0:
            raise ConfigError("file_bytes must be positive")
        sim = self.syscalls.host.sim
        result = BenchmarkResult(file_bytes=file_bytes, chunk_bytes=self.chunk_bytes)
        trace = result.trace
        previous_sink = self.syscalls.latency_sink
        self.syscalls.latency_sink = trace
        start = sim.now
        try:
            remaining = file_bytes
            while remaining > 0:
                chunk = min(self.chunk_bytes, remaining)
                yield from self.syscalls.write(file, chunk)
                remaining -= chunk
            result.write_elapsed_ns = sim.now - start
            if self.do_fsync:
                yield from self.syscalls.fsync(file)
            result.flush_elapsed_ns = sim.now - start
            yield from self.syscalls.close(file)
            result.close_elapsed_ns = sim.now - start
        finally:
            self.syscalls.latency_sink = previous_sink
        return result
