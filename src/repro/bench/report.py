"""Exporting traces and curves for external plotting.

The paper's figures are gnuplot scatter plots and Excel bar charts;
these helpers dump the equivalent data as CSV (one file per series)
plus a small gnuplot script, so a reader can regenerate publication
figures from any experiment's ``data`` dict.
"""

from __future__ import annotations

import csv
import os
from typing import Mapping, Sequence

from .latency import LatencyTrace

__all__ = [
    "write_trace_csv",
    "write_curve_csv",
    "write_histogram_csv",
    "gnuplot_script",
    "trace_summary",
]


def trace_summary(trace: LatencyTrace, label: str = "write()") -> str:
    """One-line latency summary: count, mean, and p50/p90/p99.

    Used by the CLI experiment output and the observability profile
    exporter so every report quotes the same percentile definition
    (nearest-rank, :meth:`LatencyTrace.percentiles_ns`).
    """
    if len(trace) == 0:
        return f"{label}: no calls recorded"
    pcts = trace.percentiles_ns((50, 90, 99))
    return (
        f"{label}: n={len(trace)} mean={trace.mean_ns() / 1e3:.1f}us "
        f"p50={pcts[50] / 1e3:.1f}us p90={pcts[90] / 1e3:.1f}us "
        f"p99={pcts[99] / 1e3:.1f}us max={trace.max_ns() / 1e6:.3f}ms"
    )


def write_trace_csv(path: str, trace: LatencyTrace) -> None:
    """Per-call latency (the Figs. 2-4 axes: call number, ms)."""
    with open(path, "w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(["call", "latency_ms", "start_s"])
        for i, (start, latency) in enumerate(
            zip(trace.starts_ns, trace.latencies_ns)
        ):
            writer.writerow([i, latency / 1e6, start / 1e9])


def write_curve_csv(path: str, sizes: Sequence[float],
                    curves: Mapping[str, Sequence[float]]) -> None:
    """Throughput-vs-size curves (the Figs. 1/7 axes)."""
    names = list(curves)
    with open(path, "w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(["size_mb"] + names)
        for i, size in enumerate(sizes):
            writer.writerow([size] + [curves[name][i] for name in names])


def write_histogram_csv(path: str, histogram) -> None:
    """Binned latency counts (the Figs. 5/6 axes)."""
    with open(path, "w", newline="") as f:
        writer = csv.writer(f)
        writer.writerow(["bin_lower_ms", "count"])
        for edge, count in zip(histogram.bin_edges_ms(), histogram.counts):
            writer.writerow([edge, count])
        writer.writerow([histogram.max_ns / 1e6, histogram.overflow])


def gnuplot_script(directory: str, trace_files: Sequence[str]) -> str:
    """A ready-to-run gnuplot script over exported trace CSVs."""
    lines = [
        "set datafile separator ','",
        "set xlabel 'count of write() system calls'",
        "set ylabel 'actual write() system call latency (millisecs)'",
        "set yrange [0:1.4]",
        "set key top right",
        "plot \\",
    ]
    plots = [
        f"  '{os.path.basename(path)}' using 1:2 every ::1 with points"
        f" pt 7 ps 0.3 title '{os.path.splitext(os.path.basename(path))[0]}'"
        for path in trace_files
    ]
    lines.append(", \\\n".join(plots))
    script = "\n".join(lines) + "\n"
    path = os.path.join(directory, "plot_latency.gp")
    with open(path, "w") as f:
        f.write(script)
    return path
