"""Test-bed assembly: one client machine wired to a chosen target.

A :class:`TestBed` reproduces §3.1's systems-under-test: the dual-P3
client, the gigabit switch, and one of

* ``"netapp"`` — the F85 filer (NVRAM, FILE_SYNC, checkpoints),
* ``"linux"`` — the 4-way Linux knfsd (UNSTABLE + COMMIT, one disk),
* ``"linux-100"`` — the same knfsd behind 100 Mbps Ethernet (§3.5),
* ``"local"`` — client-local ext2 (no server at all).

Client behaviour comes from a variant name or an explicit
:class:`~repro.config.NfsClientConfig`.
"""

from __future__ import annotations

from typing import Optional, Union

from ..config import (
    ClientHwConfig,
    FilerConfig,
    LinuxServerConfig,
    LocalFsConfig,
    MountConfig,
    NetConfig,
    NfsClientConfig,
)
from ..errors import ConfigError
from ..kernel.pagecache import PageCache
from ..kernel.syscalls import SyscallLayer
from ..localfs import Ext2Fs
from ..net import Host, Switch
from ..nfsclient import NfsClient
from ..nfsclient.variants import variant_config
from ..server import LinuxNfsServer, NetappFiler
from ..sim import SamplingProfiler, Simulator
from ..units import us
from .bonnie import BenchmarkResult, SequentialWriteBenchmark

__all__ = ["TestBed", "SERVER_KINDS"]

SERVER_KINDS = ("netapp", "linux", "linux-100", "local")


class TestBed:
    """One simulated client/network/target assembly."""

    #: Not a pytest test class, despite the name.
    __test__ = False

    def __init__(
        self,
        target: str = "netapp",
        client: Union[str, NfsClientConfig, None] = "stock",
        hw: Optional[ClientHwConfig] = None,
        net: Optional[NetConfig] = None,
        mount: Optional[MountConfig] = None,
        filer_config: Optional[FilerConfig] = None,
        linux_config: Optional[LinuxServerConfig] = None,
        local_config: Optional[LocalFsConfig] = None,
        profile: bool = False,
        observe: bool = False,
    ):
        if target not in SERVER_KINDS:
            raise ConfigError(
                f"unknown target {target!r} (expected one of {SERVER_KINDS})"
            )
        self.target = target
        self.hw = hw or ClientHwConfig()
        self.net = net or NetConfig.gigabit()
        self.mount = mount or MountConfig()
        if isinstance(client, str):
            self.client_config = variant_config(client)
        else:
            self.client_config = client or NfsClientConfig()

        self.sim = Simulator()
        self.switch = Switch(self.sim)
        self.client_host = Host(
            self.sim,
            "client",
            self.switch,
            self.net,
            ncpus=self.hw.ncpus,
            costs=self.hw.costs,
        )
        self.pagecache = PageCache(
            self.sim,
            dirty_limit_bytes=self.hw.dirty_limit_bytes,
            background_bytes=self.hw.dirty_background_bytes,
        )
        self.server = None
        self.nfs: Optional[NfsClient] = None
        self.ext2: Optional[Ext2Fs] = None

        if target == "netapp":
            self.server = NetappFiler(
                self.sim, self.switch, self.net, filer_config or FilerConfig()
            )
        elif target == "linux":
            self.server = LinuxNfsServer(
                self.sim, self.switch, self.net, linux_config or LinuxServerConfig()
            )
        elif target == "linux-100":
            self.server = LinuxNfsServer(
                self.sim,
                self.switch,
                NetConfig.fast_ethernet(),
                linux_config or LinuxServerConfig(),
            )
        else:  # local
            self.ext2 = Ext2Fs(
                self.client_host, self.pagecache, local_config or LocalFsConfig()
            )

        if self.server is not None:
            self.nfs = NfsClient(
                self.client_host,
                self.pagecache,
                server=self.server.name,
                mount=self.mount,
                behavior=self.client_config,
            )

        self.syscalls = SyscallLayer(
            self.client_host, instrument=self.client_config.instrument_latency
        )
        self.profiler: Optional[SamplingProfiler] = None
        if profile:
            self.profiler = SamplingProfiler(
                self.sim, self.client_host.cpus, period=us(100)
            )
            self.profiler.start()

        # Inside a `sanitized()` session this attaches the runtime
        # sanitizers (lock order, races, invariants); otherwise a no-op.
        # Imported here to keep bench free of analysis at import time.
        from ..analysis.sanitize.runtime import attach_if_active

        self.sanitizer = attach_if_active(self)

        # Observability attaches the same way: a passive metrics+span
        # recorder, enabled explicitly or by an `observed()` session.
        from ..obs.core import attach_if_active as obs_attach_if_active

        self.obs = obs_attach_if_active(self, observe=observe)

    # -- convenience ---------------------------------------------------------

    def open_file(self, name: str = "testfile"):
        """Generator: create a fresh file on the active target."""
        if self.nfs is not None:
            return (yield from self.nfs.open_new(name))
        return (yield from self.ext2.open_new(name))

    def run_sequential_write(
        self,
        file_bytes: int,
        chunk_bytes: int = 8192,
        do_fsync: bool = True,
        time_limit_ns: Optional[int] = None,
    ) -> BenchmarkResult:
        """Build, run and harvest one full benchmark run (blocking)."""
        bench = SequentialWriteBenchmark(
            self.syscalls, chunk_bytes=chunk_bytes, do_fsync=do_fsync
        )

        def body():
            file = yield from self.open_file()
            result = yield from bench.run(file, file_bytes)
            return result

        # daemon=True so failures surface as task.error below (re-raised
        # with their original type) instead of TaskFailed mid-run.
        task = self.sim.spawn(body(), name="benchmark", daemon=True)
        self.sim.run_until(lambda: task.done, limit=time_limit_ns)
        if not task.done:
            raise ConfigError("benchmark did not finish; simulation wedged?")
        if task.error is not None:
            raise task.error
        if self.profiler is not None:
            self.profiler.stop()
        return task.result
