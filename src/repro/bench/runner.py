"""Test-bed assembly: one client machine wired to a chosen target.

:class:`TestBed` is the historical single-client surface, now a thin
shim over a one-client :class:`~repro.topology.Topology` — same public
attributes, same behaviour, bit-identical results.  New code (and
anything multi-client) should use the topology API directly; the
targets are unchanged:

* ``"netapp"`` — the F85 filer (NVRAM, FILE_SYNC, checkpoints),
* ``"linux"`` — the 4-way Linux knfsd (UNSTABLE + COMMIT, one disk),
* ``"linux-100"`` — the same knfsd behind 100 Mbps Ethernet (§3.5),
* ``"local"`` — client-local ext2 (no server at all).

The per-kind ``filer_config``/``linux_config``/``local_config`` kwargs
are deprecated in favour of ``server=ServerSpec(kind, config)``; a
config passed for a target that would have silently ignored it is now a
:class:`~repro.errors.ConfigError` naming the replacement.
"""

from __future__ import annotations

import dataclasses
import warnings
from typing import Optional, Union

from ..config import (
    ClientHwConfig,
    FilerConfig,
    LinuxServerConfig,
    LocalFsConfig,
    MountConfig,
    NetConfig,
    NfsClientConfig,
)
from ..errors import ConfigError
from .bonnie import BenchmarkResult

__all__ = ["TestBed", "SERVER_KINDS"]

SERVER_KINDS = ("netapp", "linux", "linux-100", "local")


class TestBed:
    """One simulated client/network/target assembly."""

    #: Not a pytest test class, despite the name.
    __test__ = False

    def __init__(
        self,
        target: Optional[str] = None,
        client: Union[str, NfsClientConfig, None] = "stock",
        hw: Optional[ClientHwConfig] = None,
        net: Optional[NetConfig] = None,
        mount: Optional[MountConfig] = None,
        filer_config: Optional[FilerConfig] = None,
        linux_config: Optional[LinuxServerConfig] = None,
        local_config: Optional[LocalFsConfig] = None,
        profile: bool = False,
        observe: bool = False,
        server=None,
    ):
        # Imported lazily: repro.bench must stay importable before
        # repro.topology finishes loading (topology itself builds on
        # the benchmark classes in this package).
        from ..topology import ClientSpec, ServerSpec, Topology

        legacy = (filer_config, linux_config, local_config)
        if server is not None:
            if any(cfg is not None for cfg in legacy):
                raise ConfigError(
                    "pass either server=ServerSpec(...) or the deprecated "
                    "per-kind config kwargs, not both"
                )
            if not isinstance(server, ServerSpec):
                raise ConfigError(
                    f"server must be a ServerSpec, got {type(server).__name__}"
                )
            if target is not None and target != server.kind:
                raise ConfigError(
                    f"target {target!r} contradicts server kind {server.kind!r}"
                )
        else:
            if any(cfg is not None for cfg in legacy):
                warnings.warn(
                    "filer_config/linux_config/local_config are deprecated; "
                    "pass server=ServerSpec(kind, config) instead",
                    DeprecationWarning,
                    stacklevel=2,
                )
            server = ServerSpec.from_legacy(
                target if target is not None else "netapp",
                filer_config=filer_config,
                linux_config=linux_config,
                local_config=local_config,
            )
            # Historical behaviour: the server's switch port shared the
            # client's NetConfig (including injected loss), except for
            # linux-100's fixed fast Ethernet.
            if net is not None and server.kind in ("netapp", "linux"):
                server = dataclasses.replace(server, net=net)

        spec = ClientSpec(
            client=client, hw=hw, net=net, mount=mount, name="client"
        )
        self.topology = Topology(
            clients=(spec,),
            servers=(server,),
            profile=profile,
            observe=observe,
        )
        stack = self.topology.clients[0]

        # The historical public surface, verbatim.
        self.target = server.kind
        self.hw = stack.hw
        self.net = stack.net
        self.mount = stack.mount
        self.client_config = stack.client_config
        self.sim = self.topology.sim
        self.switch = self.topology.switch
        self.client_host = stack.host
        self.pagecache = stack.pagecache
        self.server = stack.server
        self.nfs = stack.nfs
        self.ext2 = stack.ext2
        self.syscalls = stack.syscalls
        self.profiler = stack.profiler
        self.sanitizer = stack.sanitizer
        self.obs = self.topology.obs

    # -- convenience ---------------------------------------------------------

    def open_file(self, name: str = "testfile"):
        """Generator: create a fresh file on the active target."""
        return (yield from self.topology.clients[0].open_file(name))

    def run_sequential_write(
        self,
        file_bytes: int,
        chunk_bytes: int = 8192,
        do_fsync: bool = True,
        time_limit_ns: Optional[int] = None,
    ) -> BenchmarkResult:
        """Build, run and harvest one full benchmark run (blocking)."""
        return self.topology.run_workload(
            "sequential-write",
            {
                "file_bytes": file_bytes,
                "chunk_bytes": chunk_bytes,
                "do_fsync": do_fsync,
                "file_name": "testfile",
            },
            time_limit_ns=time_limit_ns,
        )
