"""The unified Workload protocol, registry, and workload drivers.

The paper's benchmark is deliberately simple (§2.3); this module
extends it to the scenarios the paper motivates or speculates about —
and, since PR 10, provides the *single* entry point every driver in the
repo goes through: a :class:`Workload` is a named, parameterised
generator body that runs on one client stack (a
:class:`~repro.topology.build.ClientStack` or a duck-typed
:class:`TestBed`) and reports per-op latency and bytes into the
observability timelines.

Closed-loop benchmarks (:class:`~repro.topology.fleet.FleetWorkload`),
the promoted example workloads (``examples/*.py`` are thin wrappers
now), and the open-loop traffic sessions of :mod:`repro.traffic` all
implement the same protocol, replacing the four parallel entry points
that predated it (free functions here, ``FleetWorkload``'s hardwired
writer, ``Topology.run_sequential_write``, and copy-pasted example
bodies).

A workload body is a generator that returns ``(start_ns, end_ns,
result)`` — end time at index 1 is a contract the sharded DES engine
relies on when harvesting completion times.  ``Workload.row`` reduces
one finished body to the JSON-able per-client dict that fleet results,
the sweep cache, and run fingerprints are built from.

All randomness inside workload bodies comes from named
:class:`~repro.sim.RngStreams` streams keyed by the client's name, so
fleets stay bit-reproducible and shard-invariant.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any, ClassVar, Dict, List, Optional, Tuple, Type

from ..errors import ConfigError
from ..obs.core import DISABLED
from ..sim import AllOf, RngStreams
from ..units import KIB, MB, PAGE_SIZE, throughput, to_us
from .bonnie import SequentialWriteBenchmark
from .latency import LatencyTrace
from .runner import TestBed

__all__ = [
    "Workload",
    "WorkloadOutcome",
    "WorkloadResult",
    "register_workload",
    "get_workload",
    "workload_names",
    "workload_type",
    "client_workload_body",
    "run_client_workload",
    "trace_sha",
    "workload_row",
    "run_workload",
    "sequential_writers",
    "transaction_log",
    "random_writer",
    "sweep_file_sizes",
    "parallel_size_sweep",
]


#: Sentinel for parameters a workload cannot default.
_REQUIRED = object()


def _client_name(stack) -> str:
    """The stack's client name; TestBeds duck-type as ``"client"``."""
    return getattr(stack, "name", "client")


def _obs(stack):
    """The stack's observer, or the disabled singleton."""
    return getattr(stack, "obs", None) or DISABLED


def trace_sha(latencies_ns) -> str:
    """Checksum of a latency series — the per-client fingerprint leaf."""
    blob = ",".join(str(v) for v in latencies_ns)
    return hashlib.sha256(blob.encode()).hexdigest()


@dataclass
class WorkloadOutcome:
    """The reduced outcome of one generic workload body.

    ``extra`` carries deterministic, JSON-able workload-specific
    figures (they enter the run fingerprint through the row).
    """

    workload: str
    bytes_written: int = 0
    ops: int = 0
    trace: LatencyTrace = field(default_factory=LatencyTrace)
    extra: Dict[str, Any] = field(default_factory=dict)


def workload_row(
    name: str, start_ns: int, end_ns: int, outcome: WorkloadOutcome
) -> Dict[str, Any]:
    """One client's reduced row for a generic workload outcome.

    Keeps the aggregate-facing keys of the sequential-write row
    (``file_bytes``, ``write_elapsed_ns``, ``p99_ns``...) so
    :class:`~repro.topology.fleet.FleetPointResult` fairness and
    throughput properties work unchanged on mixed fleets.
    """
    return {
        "name": name,
        "workload": outcome.workload,
        "file_bytes": outcome.bytes_written,
        "start_ns": start_ns,
        "end_ns": end_ns,
        "write_elapsed_ns": end_ns - start_ns,
        "p99_ns": outcome.trace.percentile_ns(99) if len(outcome.trace) else 0,
        "calls": len(outcome.trace),
        "ops": outcome.ops,
        "trace_sha": trace_sha(outcome.trace.latencies_ns),
        "extra": {k: outcome.extra[k] for k in sorted(outcome.extra)},
    }


class Workload:
    """One named, parameterised client workload.

    Subclasses set :attr:`name` (the registry key) and :attr:`PARAMS`
    (defaults; ``REQUIRED`` marks parameters a caller must supply) and
    implement :meth:`body`.  Bodies must draw randomness only from
    named seeded streams and may report per-op telemetry through the
    stack's observer — recording is passive, so an observed run stays
    bit-identical to an unobserved one.
    """

    #: Registry key, e.g. ``"sequential-write"``.
    name: ClassVar[str] = ""
    #: Parameter defaults; :data:`REQUIRED` marks mandatory ones.
    PARAMS: ClassVar[Dict[str, Any]] = {}
    #: Exposed so subclasses (and specs) can mark mandatory params.
    REQUIRED: ClassVar[object] = _REQUIRED

    def __init__(self, **params: Any):
        unknown = sorted(set(params) - set(self.PARAMS))
        if unknown:
            raise ConfigError(
                f"workload {self.name!r} does not take "
                f"{', '.join(map(repr, unknown))} "
                f"(expected a subset of {sorted(self.PARAMS)})"
            )
        merged = dict(self.PARAMS)
        merged.update(params)
        missing = sorted(k for k, v in merged.items() if v is _REQUIRED)
        if missing:
            raise ConfigError(
                f"workload {self.name!r} needs {', '.join(map(repr, missing))}"
            )
        self.params: Dict[str, Any] = merged

    def body(self, stack):
        """Generator returning ``(start_ns, end_ns, result)``."""
        raise NotImplementedError

    def offered_bytes(self) -> int:
        """Nominal bytes this instance will write — what an open-loop
        arrival *offers* the system at session start, before any
        admission or completion.  Zero when the workload cannot know
        up front."""
        return int(self.params.get("file_bytes") or 0)

    def row(self, name: str, start_ns: int, end_ns: int, result) -> Dict[str, Any]:
        """Reduce one finished body to the per-client result row."""
        return workload_row(name, start_ns, end_ns, result)


#: The registry: workload name -> Workload subclass.
_REGISTRY: Dict[str, Type[Workload]] = {}


def register_workload(cls: Type[Workload]) -> Type[Workload]:
    """Class decorator: add a Workload subclass to the registry."""
    if not cls.name:
        raise ConfigError(f"{cls.__name__} needs a non-empty name")
    if cls.name in _REGISTRY:
        raise ConfigError(f"workload {cls.name!r} is already registered")
    _REGISTRY[cls.name] = cls
    return cls


def workload_names() -> List[str]:
    return sorted(_REGISTRY)


def workload_type(name: str) -> Type[Workload]:
    """The registered class for ``name`` (ConfigError when unknown)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ConfigError(
            f"unknown workload {name!r} (expected one of {workload_names()})"
        ) from None


def get_workload(name: str, params: Optional[Dict[str, Any]] = None) -> Workload:
    """Instantiate a registered workload with validated parameters."""
    return workload_type(name)(**(params or {}))


def client_workload_body(stack, workload: Workload, offset_ns: int = 0):
    """The canonical per-client driver generator.

    Module-level so serial fleets, shard workers, and single-bed runs
    execute the *same* generator — byte for byte — around any workload:
    an optional staggered start, then the workload body.
    """
    sim = stack.sim
    if offset_ns > 0:
        yield sim.timeout(offset_ns)
    return (yield from workload.body(stack))


def run_client_workload(
    topology,
    workload: Workload,
    client: int = 0,
    time_limit_ns: Optional[int] = None,
    task_name: str = "benchmark",
):
    """Run one workload on one topology client to completion (blocking).

    Returns the ``(start_ns, end_ns, result)`` triple.  This is the
    blocking single-client path ``Topology.run_sequential_write`` and
    ``TestBed.run_sequential_write`` now delegate to.
    """
    stack = topology.clients[client]
    task = topology.sim.spawn(
        client_workload_body(stack, workload), name=task_name, daemon=True
    )
    topology.sim.run_until(lambda: task.done, limit=time_limit_ns)
    if not task.done:
        raise ConfigError(f"{workload.name} did not finish; simulation wedged?")
    if task.error is not None:
        raise task.error
    if stack.profiler is not None:
        stack.profiler.stop()
    return task.result


# -- registered workloads ------------------------------------------------------


@register_workload
class SequentialWriteWorkload(Workload):
    """The paper's benchmark (§2.3): stream one file, then flush.

    ``file_name=None`` derives ``<client>-file`` (the fleet convention);
    ``"testfile"`` is the historical single-bed name.  The body is the
    exact generator the fleet engine always ran — per-op latency flows
    through the benchmark's trace and the syscall layer's timelines.
    """

    name = "sequential-write"
    PARAMS = {
        "file_bytes": _REQUIRED,
        "chunk_bytes": 8192,
        "do_fsync": True,
        "file_name": None,
    }

    def body(self, stack):
        sim = stack.sim
        bench = SequentialWriteBenchmark(
            stack.syscalls,
            chunk_bytes=self.params["chunk_bytes"],
            do_fsync=self.params["do_fsync"],
        )
        start = sim.now
        file_name = self.params["file_name"]
        if file_name is None:
            file_name = f"{_client_name(stack)}-file"
        file = yield from stack.open_file(file_name)
        result = yield from bench.run(file, self.params["file_bytes"])
        return (start, sim.now, result)

    def row(self, name, start_ns, end_ns, result):
        # The historical fleet row, bit-for-bit: PR 5/6 fingerprints
        # and the scenarios/ corpus replay depend on this shape.
        from ..topology.fleet import client_row

        return client_row(name, start_ns, end_ns, result)


@register_workload
class DatabaseFsyncWorkload(Workload):
    """Transaction log: append + fsync per commit (§3.6 permanence).

    The promoted body of ``examples/database_fsync.py`` — commit
    latency is the figure of merit, reported per-op into the
    ``workload/commit_latency_us`` timeline.
    """

    name = "database-fsync"
    PARAMS = {
        "transactions": 400,
        "record_bytes": PAGE_SIZE,
        "file_name": "txlog",
    }

    def offered_bytes(self) -> int:
        return self.params["transactions"] * self.params["record_bytes"]

    def body(self, stack):
        sim = stack.sim
        obs = _obs(stack)
        trace = LatencyTrace()
        start = sim.now
        file = yield from stack.open_file(self.params["file_name"])
        record_bytes = self.params["record_bytes"]
        for _tx in range(self.params["transactions"]):
            yield from stack.syscalls.write(file, record_bytes)
            commit_start = sim.now
            yield from stack.syscalls.fsync(file)
            trace.record(commit_start, sim.now)
            obs.series_observe(
                "workload/commit_latency_us", to_us(sim.now - commit_start)
            )
            obs.series_count("workload/op_bytes", record_bytes)
        yield from stack.syscalls.close(file)
        outcome = WorkloadOutcome(
            workload=self.name,
            bytes_written=self.params["transactions"] * record_bytes,
            ops=self.params["transactions"],
            trace=trace,
            extra={
                "commits_sent": (
                    stack.nfs.stats.commits_sent if stack.nfs is not None else 0
                ),
            },
        )
        return (start, sim.now, outcome)


@register_workload
class MailSpoolWorkload(Workload):
    """Mail spool: many small files, each fsynced before delivery.

    The promoted body of ``examples/mail_spool.py``: ``concurrency``
    delivery agents drain a queue of messages with sizes drawn from the
    ``<client>/mail-sizes`` stream, fsync-then-close per message.
    """

    name = "mail-spool"
    PARAMS = {
        "messages": 150,
        "concurrency": 4,
        "min_bytes": 2 * KIB,
        "max_bytes": 64 * KIB,
        "chunk_bytes": 8192,
        "seed": 2,
        "file_prefix": "spool/msg",
    }

    def offered_bytes(self) -> int:
        # The expectation of a uniform size draw.
        mid = (self.params["min_bytes"] + self.params["max_bytes"]) // 2
        return self.params["messages"] * mid

    def body(self, stack):
        sim = stack.sim
        obs = _obs(stack)
        name = _client_name(stack)
        rng = RngStreams(self.params["seed"]).stream(f"{name}/mail-sizes")
        sizes = [
            rng.randrange(self.params["min_bytes"], self.params["max_bytes"])
            for _ in range(self.params["messages"])
        ]
        queue = list(enumerate(sizes))
        trace = LatencyTrace()
        chunk_bytes = self.params["chunk_bytes"]
        prefix = self.params["file_prefix"]
        delivered = []

        def agent():
            while queue:
                msg_id, size = queue.pop(0)
                msg_start = sim.now
                file = yield from stack.open_file(f"{prefix}{msg_id}")
                remaining = size
                while remaining > 0:
                    chunk = min(chunk_bytes, remaining)
                    yield from stack.syscalls.write(file, chunk)
                    remaining -= chunk
                yield from stack.syscalls.fsync(file)  # SMTP must not lie
                yield from stack.syscalls.close(file)
                trace.record(msg_start, sim.now)
                obs.series_observe(
                    "workload/delivery_latency_us", to_us(sim.now - msg_start)
                )
                obs.series_count("workload/op_bytes", size)
                delivered.append(msg_id)

        start = sim.now
        tasks = [
            sim.spawn(agent(), name=f"{name}-agent{i}", daemon=True)
            for i in range(self.params["concurrency"])
        ]
        yield AllOf(tasks)
        outcome = WorkloadOutcome(
            workload=self.name,
            bytes_written=sum(sizes),
            ops=len(delivered),
            trace=trace,
        )
        return (start, sim.now, outcome)


@register_workload
class ReadVsWriteWorkload(Workload):
    """Write vs warm-read vs cold-read throughput (§2.3's rationale).

    The promoted body of ``examples/read_vs_write.py``: write and flush
    a file, read it back warm (page cache) and cold (evicted, so the
    read-ahead pipeline pays the wire), reporting the four throughputs.
    NFS targets only — the cold phase needs an evictable remote file.
    """

    name = "read-vs-write"
    PARAMS = {
        "file_bytes": 8 * MB,
        "chunk_bytes": 8192,
        "file_name": "f",
    }

    def body(self, stack):
        if stack.nfs is None:
            raise ConfigError("read-vs-write needs an NFS target")
        sim = stack.sim
        obs = _obs(stack)
        file_bytes = self.params["file_bytes"]
        chunk_bytes = self.params["chunk_bytes"]
        trace = LatencyTrace()
        out: Dict[str, Any] = {}

        start = sim.now
        file = yield from stack.nfs.open_new(self.params["file_name"])
        remaining = file_bytes
        while remaining:
            chunk = min(chunk_bytes, remaining)
            op_start = sim.now
            yield from stack.syscalls.write(file, chunk)
            trace.record(op_start, sim.now)
            obs.series_count("workload/op_bytes", chunk)
            remaining -= chunk
        out["write_bps"] = throughput(file_bytes, sim.now - start)
        yield from stack.syscalls.fsync(file)
        out["flush_bps"] = throughput(file_bytes, sim.now - start)

        # Warm read: everything still in the client page cache.
        file.pos = 0
        phase = sim.now
        while (yield from stack.syscalls.read(file, chunk_bytes)):
            pass
        out["warm_read_bps"] = throughput(file_bytes, sim.now - phase)

        # Cold read: evict, fetch over the wire with read-ahead.
        file.cached_pages.clear()
        file.pos = 0
        phase = sim.now
        while (yield from stack.syscalls.read(file, chunk_bytes)):
            pass
        out["cold_read_bps"] = throughput(file_bytes, sim.now - phase)
        out["read_rpcs"] = stack.nfs.stats.reads_sent

        outcome = WorkloadOutcome(
            workload=self.name,
            bytes_written=file_bytes,
            ops=len(trace),
            trace=trace,
            extra={k: round(v, 6) if isinstance(v, float) else v
                   for k, v in out.items()},
        )
        return (start, sim.now, outcome)


@register_workload
class RandomWriteWorkload(Workload):
    """Page-aligned random-offset writes within a fixed extent.

    The future-work "database ... corner cases" driver, on the
    ``<client>/random-writer`` stream.
    """

    name = "random-write"
    PARAMS = {
        "file_bytes": _REQUIRED,
        "writes": _REQUIRED,
        "chunk_bytes": 8192,
        "seed": 1,
        "file_name": "random",
    }

    def offered_bytes(self) -> int:
        return self.params["writes"] * self.params["chunk_bytes"]

    def body(self, stack):
        sim = stack.sim
        obs = _obs(stack)
        name = _client_name(stack)
        rng = RngStreams(self.params["seed"]).stream(f"{name}/random-writer")
        npages = max(1, self.params["file_bytes"] // PAGE_SIZE)
        chunk_bytes = self.params["chunk_bytes"]
        trace = LatencyTrace()
        start = sim.now
        file = yield from stack.open_file(self.params["file_name"])
        for _ in range(self.params["writes"]):
            file.pos = rng.randrange(npages) * PAGE_SIZE
            op_start = sim.now
            yield from stack.syscalls.write(file, chunk_bytes)
            trace.record(op_start, sim.now)
            obs.series_observe(
                "workload/op_latency_us", to_us(sim.now - op_start)
            )
            obs.series_count("workload/op_bytes", chunk_bytes)
        yield from stack.syscalls.close(file)
        outcome = WorkloadOutcome(
            workload=self.name,
            bytes_written=self.params["writes"] * chunk_bytes,
            ops=self.params["writes"],
            trace=trace,
        )
        return (start, sim.now, outcome)


# -- legacy free-function drivers ---------------------------------------------


@dataclass
class WorkloadResult:
    """Aggregate outcome of a multi-task workload."""

    bytes_written: int
    elapsed_ns: int
    traces: List[LatencyTrace] = field(default_factory=list)

    @property
    def total_throughput(self) -> float:
        return throughput(self.bytes_written, self.elapsed_ns)

    @property
    def total_mbps(self) -> float:
        return self.total_throughput / 1e6


def run_workload(bed: TestBed, tasks, time_limit_ns: Optional[int] = None):
    """Run workload generator(s) to completion on a test bed.

    ``tasks`` is a list of (name, generator) pairs; returns when all
    have finished, re-raising the first failure.
    """
    spawned = [bed.sim.spawn(gen, name=name, daemon=True) for name, gen in tasks]
    bed.sim.run_until(lambda: all(t.done for t in spawned), limit=time_limit_ns)
    for task in spawned:
        if not task.done:
            raise ConfigError(f"workload task {task.name!r} did not finish")
        if task.error is not None:
            raise task.error
    return spawned


def sequential_writers(bed: TestBed, nwriters: int, bytes_each: int,
                       chunk_bytes: int = 8192,
                       close: bool = True) -> WorkloadResult:
    """N processes each streaming into its own fresh file.

    The §3.5 concern writ large: every writer contends with rpciod and
    the flush daemon for the kernel lock.  With ``close=False`` the
    workload measures the memory-write phase only (dirty data is left
    cached), isolating client-side scalability from wire drain time.
    """
    if nwriters < 1:
        raise ConfigError("need at least one writer")
    traces = [LatencyTrace() for _ in range(nwriters)]
    start = bed.sim.now

    def writer(index: int):
        file = yield from bed.open_file(f"writer{index}")
        remaining = bytes_each
        while remaining:
            chunk = min(chunk_bytes, remaining)
            call_start = bed.sim.now
            yield from bed.syscalls.write(file, chunk)
            traces[index].record(call_start, bed.sim.now)
            remaining -= chunk
        if close:
            yield from bed.syscalls.close(file)

    run_workload(bed, [(f"writer{i}", writer(i)) for i in range(nwriters)])
    return WorkloadResult(
        bytes_written=nwriters * bytes_each,
        elapsed_ns=bed.sim.now - start,
        traces=traces,
    )


def transaction_log(bed: TestBed, transactions: int,
                    record_bytes: int = PAGE_SIZE) -> WorkloadResult:
    """Append + fsync per transaction (commit-latency bound).

    A thin wrapper over the registered ``database-fsync`` workload.
    """
    workload = get_workload(
        "database-fsync",
        {"transactions": transactions, "record_bytes": record_bytes},
    )
    start = bed.sim.now
    tasks = run_workload(bed, [("txlog", client_workload_body(bed, workload))])
    _start, _end, outcome = tasks[0].result
    return WorkloadResult(
        bytes_written=outcome.bytes_written,
        elapsed_ns=bed.sim.now - start,
        traces=[outcome.trace],
    )


def random_writer(bed: TestBed, file_bytes: int, writes: int,
                  chunk_bytes: int = 8192, seed: int = 1) -> WorkloadResult:
    """Page-aligned random-offset writes within a fixed extent.

    A thin wrapper over the registered ``random-write`` workload.
    """
    workload = get_workload(
        "random-write",
        {
            "file_bytes": file_bytes,
            "writes": writes,
            "chunk_bytes": chunk_bytes,
            "seed": seed,
        },
    )
    start = bed.sim.now
    tasks = run_workload(bed, [("random", client_workload_body(bed, workload))])
    _start, _end, outcome = tasks[0].result
    return WorkloadResult(
        bytes_written=outcome.bytes_written,
        elapsed_ns=bed.sim.now - start,
        traces=[outcome.trace],
    )


def sweep_file_sizes(make_bed, sizes_bytes, chunk_bytes: int = 8192):
    """Fresh test bed per size; returns [(size, BenchmarkResult)].

    ``make_bed`` is a zero-argument factory (each run needs a pristine
    simulated world).  Factories are arbitrary closures, so this sweep
    is inherently serial; when the points can be described as plain
    configuration, use :func:`parallel_size_sweep` instead.
    """
    out = []
    for size in sizes_bytes:
        bed = make_bed()
        out.append((size, bed.run_sequential_write(size, chunk_bytes=chunk_bytes)))
    return out


def parallel_size_sweep(
    target: str,
    client,
    sizes_bytes,
    chunk_bytes: int = 8192,
    jobs: int = 1,
    cache=None,
    **bed_kwargs,
):
    """Config-described size sweep; returns [(size, PointResult)].

    The picklable cousin of :func:`sweep_file_sizes`: each point becomes
    a :class:`~repro.parallel.JobSpec` (``bed_kwargs`` may carry ``hw``,
    ``mount``, ``filer_config``...) and runs through a
    :class:`~repro.parallel.SweepExecutor`, fanning out over ``jobs``
    worker processes and reusing ``cache`` hits.  Results are identical
    to the serial sweep — every point is its own deterministic world.
    """
    from ..parallel import JobSpec, SweepExecutor

    specs = [
        JobSpec(
            target=target,
            client=client,
            file_bytes=size,
            chunk_bytes=chunk_bytes,
            **bed_kwargs,
        )
        for size in sizes_bytes
    ]
    results = SweepExecutor(jobs=jobs, cache=cache).map(specs)
    return list(zip(sizes_bytes, results))
