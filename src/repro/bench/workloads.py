"""Workload drivers beyond the plain sequential write.

The paper's benchmark is deliberately simple (§2.3); these drivers
extend it to the scenarios the paper motivates or speculates about:
multiple concurrent writers (the §3.5 SMP discussion), synchronous
transaction logs (§3.6's "applications require data permanence"), and
random-offset writers (the future-work "database ... corner cases").

All drivers are generators runnable on a :class:`TestBed` via
:func:`run_workload`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..errors import ConfigError
from ..sim import RngStreams
from ..units import PAGE_SIZE, throughput
from .latency import LatencyTrace
from .runner import TestBed

__all__ = [
    "WorkloadResult",
    "run_workload",
    "sequential_writers",
    "transaction_log",
    "random_writer",
    "sweep_file_sizes",
    "parallel_size_sweep",
]


@dataclass
class WorkloadResult:
    """Aggregate outcome of a multi-task workload."""

    bytes_written: int
    elapsed_ns: int
    traces: List[LatencyTrace] = field(default_factory=list)

    @property
    def total_throughput(self) -> float:
        return throughput(self.bytes_written, self.elapsed_ns)

    @property
    def total_mbps(self) -> float:
        return self.total_throughput / 1e6


def run_workload(bed: TestBed, tasks, time_limit_ns: Optional[int] = None):
    """Run workload generator(s) to completion on a test bed.

    ``tasks`` is a list of (name, generator) pairs; returns when all
    have finished, re-raising the first failure.
    """
    spawned = [bed.sim.spawn(gen, name=name, daemon=True) for name, gen in tasks]
    bed.sim.run_until(lambda: all(t.done for t in spawned), limit=time_limit_ns)
    for task in spawned:
        if not task.done:
            raise ConfigError(f"workload task {task.name!r} did not finish")
        if task.error is not None:
            raise task.error
    return spawned


def sequential_writers(bed: TestBed, nwriters: int, bytes_each: int,
                       chunk_bytes: int = 8192,
                       close: bool = True) -> WorkloadResult:
    """N processes each streaming into its own fresh file.

    The §3.5 concern writ large: every writer contends with rpciod and
    the flush daemon for the kernel lock.  With ``close=False`` the
    workload measures the memory-write phase only (dirty data is left
    cached), isolating client-side scalability from wire drain time.
    """
    if nwriters < 1:
        raise ConfigError("need at least one writer")
    traces = [LatencyTrace() for _ in range(nwriters)]
    start = bed.sim.now

    def writer(index: int):
        file = yield from bed.open_file(f"writer{index}")
        remaining = bytes_each
        while remaining:
            chunk = min(chunk_bytes, remaining)
            call_start = bed.sim.now
            yield from bed.syscalls.write(file, chunk)
            traces[index].record(call_start, bed.sim.now)
            remaining -= chunk
        if close:
            yield from bed.syscalls.close(file)

    run_workload(bed, [(f"writer{i}", writer(i)) for i in range(nwriters)])
    return WorkloadResult(
        bytes_written=nwriters * bytes_each,
        elapsed_ns=bed.sim.now - start,
        traces=traces,
    )


def transaction_log(bed: TestBed, transactions: int,
                    record_bytes: int = PAGE_SIZE) -> WorkloadResult:
    """Append + fsync per transaction (commit-latency bound)."""
    trace = LatencyTrace()
    start = bed.sim.now

    def logger():
        file = yield from bed.open_file("txlog")
        for _ in range(transactions):
            yield from bed.syscalls.write(file, record_bytes)
            commit_start = bed.sim.now
            yield from bed.syscalls.fsync(file)
            trace.record(commit_start, bed.sim.now)
        yield from bed.syscalls.close(file)

    run_workload(bed, [("txlog", logger())])
    return WorkloadResult(
        bytes_written=transactions * record_bytes,
        elapsed_ns=bed.sim.now - start,
        traces=[trace],
    )


def random_writer(bed: TestBed, file_bytes: int, writes: int,
                  chunk_bytes: int = 8192, seed: int = 1) -> WorkloadResult:
    """Page-aligned random-offset writes within a fixed extent."""
    rng = RngStreams(seed).stream("random-writer")
    trace = LatencyTrace()
    start = bed.sim.now
    npages = max(1, file_bytes // PAGE_SIZE)

    def writer():
        file = yield from bed.open_file("random")
        for _ in range(writes):
            page = rng.randrange(npages)
            file.pos = page * PAGE_SIZE
            call_start = bed.sim.now
            yield from bed.syscalls.write(file, chunk_bytes)
            trace.record(call_start, bed.sim.now)
        yield from bed.syscalls.close(file)

    run_workload(bed, [("random", writer())])
    return WorkloadResult(
        bytes_written=writes * chunk_bytes,
        elapsed_ns=bed.sim.now - start,
        traces=[trace],
    )


def sweep_file_sizes(make_bed, sizes_bytes, chunk_bytes: int = 8192):
    """Fresh test bed per size; returns [(size, BenchmarkResult)].

    ``make_bed`` is a zero-argument factory (each run needs a pristine
    simulated world).  Factories are arbitrary closures, so this sweep
    is inherently serial; when the points can be described as plain
    configuration, use :func:`parallel_size_sweep` instead.
    """
    out = []
    for size in sizes_bytes:
        bed = make_bed()
        out.append((size, bed.run_sequential_write(size, chunk_bytes=chunk_bytes)))
    return out


def parallel_size_sweep(
    target: str,
    client,
    sizes_bytes,
    chunk_bytes: int = 8192,
    jobs: int = 1,
    cache=None,
    **bed_kwargs,
):
    """Config-described size sweep; returns [(size, PointResult)].

    The picklable cousin of :func:`sweep_file_sizes`: each point becomes
    a :class:`~repro.parallel.JobSpec` (``bed_kwargs`` may carry ``hw``,
    ``mount``, ``filer_config``...) and runs through a
    :class:`~repro.parallel.SweepExecutor`, fanning out over ``jobs``
    worker processes and reusing ``cache`` hits.  Results are identical
    to the serial sweep — every point is its own deterministic world.
    """
    from ..parallel import JobSpec, SweepExecutor

    specs = [
        JobSpec(
            target=target,
            client=client,
            file_bytes=size,
            chunk_bytes=chunk_bytes,
            **bed_kwargs,
        )
        for size in sizes_bytes
    ]
    results = SweepExecutor(jobs=jobs, cache=cache).map(specs)
    return list(zip(sizes_bytes, results))
