"""The two kinds of shard-local simulations: client worlds and the hub.

Each world is an ordinary :class:`~repro.sim.Simulator` plus a partial
topology.  The partition cut runs through every client's access link:

* a **client world** owns a group of complete client stacks and the
  client end of their links — its ports' *uplinks* are
  :class:`BoundaryLink` objects that capture departing frames instead
  of scheduling a local delivery;
* the **hub world** owns the switch and every server, plus a stub port
  per client whose *downlink* is a :class:`BoundaryLink` — the switch
  forwards into it normally (paying queueing, loss and fault handling
  exactly where the serial run does) and the arrival pops out as a
  cross-shard message.

Construction mirrors the serial :class:`~repro.topology.build.Topology`
assembly order inside each world (hosts, then servers, then stacks,
then sanitizers), and the hub attaches client stub ports before the
servers so port ids match the serial switch registry.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from ...config import NetConfig
from ...net.link import Link
from ...net.switch import Switch
from ...obs.core import Observability, ScopedObservability
from ...sim import Simulator
from ...topology.build import ClientStack, materialise_server, _named_server_specs
from ...topology.fleet import fleet_workload_for, server_rows
from .plan import FleetFaults, ShardPlan, client_names

__all__ = ["BoundaryLink", "ClientShardWorld", "HubWorld", "SPAN_NAMESPACE_STRIDE"]

#: A captured boundary frame: (arrival time, sender-local seq, fragment).
Message = Tuple[int, int, Any]

#: Span-id range each world mints from: the hub starts at 0, client
#: shard ``s`` at ``(s + 1) * STRIDE`` — disjoint for any realistic run,
#: so per-world spans merge without collisions and exports renumber
#: them canonically.
SPAN_NAMESPACE_STRIDE = 1 << 48

#: (ring capacity, timeline window_ns) shipped to each world when the
#: parent has an active ``observed()`` session.
ObsConfig = Optional[Tuple[int, int]]


class BoundaryLink(Link):
    """A link whose receiving end lives in another shard.

    ``send`` does full serialisation/queueing/fault accounting exactly
    like :class:`Link` — only the delivery changes: instead of going on
    the local heap, each (possibly fault-delayed) arrival is appended
    to :attr:`outbox` with a seq reserved from the local simulator, so
    the receiving shard can replay same-timestamp frames in the order
    the sender emitted them.
    """

    __slots__ = ("outbox",)

    def __init__(self, sim, bandwidth_bytes_per_sec, latency_ns, name):
        super().__init__(sim, bandwidth_bytes_per_sec, latency_ns, name)
        self.outbox: List[Message] = []

    def _emit(self, time, deliver, args):
        self.outbox.append((time, self._sim.alloc_seq(), args[0]))

    def _emit_clean(self, arrival, deliver, args):
        self.outbox.append((arrival, self._sim.alloc_seq(), args[0]))


class _ShardTopo:
    """Duck-typed Topology context for :class:`ClientStack` phases.

    Carries the *full* client/server spec tuples (naming depends on the
    fleet-wide client count) but only this shard's live objects.
    """

    def __init__(self, sim, switch, client_specs, server_specs):
        self.sim = sim
        self.switch = switch
        self.client_specs = client_specs
        self.server_specs = server_specs
        #: Server objects by index — None in client worlds (the servers
        #: live in the hub; stacks mount them by name).
        self.servers: List[Optional[object]] = [None] * len(server_specs)


def _drain_outboxes(links: List[BoundaryLink]) -> List[Message]:
    """Merge and clear boundary outboxes into (time, seq) order."""
    out: List[Message] = []
    for link in links:
        if link.outbox:
            out.extend(link.outbox)
            link.outbox.clear()
    out.sort(key=lambda m: (m[0], m[1]))
    return out


class ClientShardWorld:
    """One worker's simulation: a group of whole client stacks."""

    def __init__(
        self,
        plan: ShardPlan,
        shard_id: int,
        faults: FleetFaults,
        obs_config: ObsConfig = None,
    ):
        spec = plan.spec
        self.plan = plan
        self.shard_id = shard_id
        self.group = plan.groups[shard_id]
        self.sim = Simulator()
        self.switch = Switch(
            self.sim, name=spec.switch.name, seed=spec.switch.seed
        )
        # Hub owns namespace 0; client shard s owns s+1 (mod nshards+1).
        self.switch.set_dgram_namespace(shard_id + 1, plan.nshards + 1)
        server_specs = tuple(_named_server_specs(spec.servers))
        topo = _ShardTopo(self.sim, self.switch, tuple(spec.clients), server_specs)
        self.stacks: List[ClientStack] = [
            ClientStack(topo, index, spec.clients[index]) for index in self.group
        ]
        for stack in self.stacks:
            stack._build_host()
        # Cut the uplinks: departing frames become boundary messages.
        self.boundaries: List[BoundaryLink] = []
        for stack in self.stacks:
            port = stack.host.port
            port.uplink = BoundaryLink(
                self.sim,
                port.net.bandwidth_bytes_per_sec,
                port.net.latency_ns,
                f"{port.name}-up",
            )
            self.boundaries.append(port.uplink)
        for stack in self.stacks:
            stack._build_stack(profile=False)
        from ...analysis.sanitize.runtime import attach_if_active

        for stack in self.stacks:
            stack.sanitizer = attach_if_active(stack)
        # Shard-side observability: this world records its own stacks
        # and the client ends of the cut links; span ids mint from the
        # shard's namespace so the parent can merge all worlds' rings.
        self.obs: Optional[Observability] = None
        if obs_config is not None:
            capacity, window_ns = obs_config
            obs = Observability(
                self.sim, enabled=True, capacity=capacity, window_ns=window_ns
            )
            obs.set_span_namespace((shard_id + 1) * SPAN_NAMESPACE_STRIDE)
            scoped = len(spec.clients) > 1
            for stack in self.stacks:
                stack.host.port.uplink.obs = obs
                view = ScopedObservability(obs, stack.name) if scoped else obs
                stack.obs = view
                stack.syscalls.obs = view
                stack.pagecache.obs = view
                if stack.nfs is not None:
                    stack.nfs.obs = view
                    stack.nfs.xprt.obs = view
            self.obs = obs
        faults.apply_links(self.switch)
        self.starvations = faults.apply_client_events(self.stacks)
        # Workload tasks spawn before the first window, as in serial.
        from ...bench.workloads import client_workload_body

        self.workloads = [fleet_workload_for(spec, stack) for stack in self.stacks]
        self.tasks = [
            self.sim.spawn(
                client_workload_body(
                    stack,
                    workload,
                    stack.spec.start_offset_ns + stack.index * spec.stagger_ns,
                ),
                name=f"benchmark-{stack.name}",
                daemon=True,
            )
            for stack, workload in zip(self.stacks, self.workloads)
        ]

    # -- window protocol -----------------------------------------------------

    def run_window(self, end: int, messages: List[Message]) -> Dict[str, Any]:
        """Inject inbound frames, simulate ``[now, end)``, report back."""
        for time, _seq, frag in messages:
            port = self.switch.port(frag.dgram.dst)
            self.sim.call_at(time, port._arrive, frag)
        self.sim.run_window(end)
        done = all(t.done for t in self.tasks)
        return {
            "outbox": _drain_outboxes(self.boundaries),
            "next": self.sim.next_event_time(),
            "done": done,
            "ends": [t.result[1] for t in self.tasks if t.done and t.error is None],
        }

    def finalise(self) -> Dict[str, Any]:
        """Reduce results once the fleet has globally completed."""
        rows, errors = [], []
        for stack, workload, task in zip(self.stacks, self.workloads, self.tasks):
            if task.error is not None:
                errors.append((stack.index, task.error))
            elif task.done:
                rows.append(
                    (stack.index, workload.row(stack.name, *task.result))
                )
        findings = []
        for stack in self.stacks:
            if stack.sanitizer is not None:
                findings.extend(stack.sanitizer.audit())
        return {
            "rows": rows,
            "errors": errors,
            "pending": [s.name for s, t in zip(self.stacks, self.tasks) if not t.done],
            "events": self.sim.events_processed,
            "findings": findings,
            # Everything the parent needs to merge this world's
            # telemetry: raw trace records (NamedTuples pickle fine),
            # the metrics dump, and the timeline snapshot.
            "obs": None
            if self.obs is None
            else {
                "records": self.obs.tracer.records(),
                "metrics": self.obs.metrics.dump_state(),
                "timelines": self.obs.timelines.snapshot(),
            },
        }


class HubWorld:
    """The parent-side simulation: switch, servers, client stubs."""

    def __init__(
        self, plan: ShardPlan, faults: FleetFaults, obs_config: ObsConfig = None
    ):
        spec = plan.spec
        self.plan = plan
        self.sim = Simulator()
        self.switch = Switch(
            self.sim, name=spec.switch.name, seed=spec.switch.seed
        )
        self.switch.set_dgram_namespace(0, plan.nshards + 1)
        self.server_specs = tuple(_named_server_specs(spec.servers))
        # Stub ports first, in client order, so switch port ids line up
        # with the serial registry; then the real servers.
        self.boundaries: List[BoundaryLink] = []
        self.stub_owner: Dict[str, int] = {}
        names = client_names(spec)
        owner = {
            index: shard
            for shard, group in enumerate(plan.groups)
            for index in group
        }
        for index, client in enumerate(spec.clients):
            net = client.net or NetConfig.gigabit()
            port = self.switch.attach(names[index], net)
            port.downlink = BoundaryLink(
                self.sim,
                net.bandwidth_bytes_per_sec,
                net.latency_ns,
                f"{port.name}-down",
            )
            self.boundaries.append(port.downlink)
            self.stub_owner[names[index]] = owner[index]
        self.servers = [
            materialise_server(self.sim, self.switch, s) for s in self.server_specs
        ]
        # Hub-side observability: the switch, every server, and the
        # switch ends of the links — frame spans record where the send
        # happens, so hub and shards partition them without overlap.
        # The hub keeps the default span namespace (base 0).
        self.obs: Optional[Observability] = None
        if obs_config is not None:
            capacity, window_ns = obs_config
            obs = Observability(
                self.sim, enabled=True, capacity=capacity, window_ns=window_ns
            )
            self.switch.obs = obs
            for port in self.switch.ports():
                port.uplink.obs = obs
                port.downlink.obs = obs
            for server in self.servers:
                server.obs = obs
                server.rpc.obs = obs
            self.obs = obs
        faults.apply_links(self.switch)
        self.schedules = faults.apply_schedules(self.servers)

    def run_window(self, end: int, messages: List[Message]) -> None:
        """Inject client frames at the switch's forward path and run."""
        for time, _seq, frag in messages:
            self.sim.call_at(time, self.switch._forward, frag)
        self.sim.run_window(end)

    def drain(self) -> Dict[int, List[Message]]:
        """Collect outbound frames, bucketed by destination shard."""
        per_shard: Dict[int, List[Message]] = {}
        for msg in _drain_outboxes(self.boundaries):
            shard = self.stub_owner[msg[2].dgram.dst]
            per_shard.setdefault(shard, []).append(msg)
        return per_shard

    def next_event_time(self) -> Optional[int]:
        return self.sim.next_event_time()

    def server_rows(self) -> List[Dict[str, Any]]:
        return server_rows(self.servers, self.switch)
