"""Shard planning: how a fleet topology splits at link boundaries.

A fleet topology is a star: every client talks to the servers through
the switch, and clients never talk to each other.  The natural cut is
therefore at the client access links — each client *shard* owns a group
of whole client stacks (host, page cache, NFS client, syscalls) plus
the client side of their uplinks/downlinks, and the *hub* shard owns
the switch, every server, and the switch side of every link.

The conservative lookahead window is the minimum client link latency:
a frame put on a cut link at time ``t`` cannot arrive before
``t + latency``, so once every shard has simulated up to ``T``, all
frames crossing a boundary before ``T + W`` are already known.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ...config import NetConfig
from ...errors import ConfigError
from ...topology.fleet import FleetJobSpec
from ...topology.spec import ClientSpec

__all__ = ["ShardPlan", "FleetFaults", "build_plan", "client_names"]


def _client_name(index: int, spec: ClientSpec, total: int) -> str:
    """The name :class:`~repro.topology.build.ClientStack` will choose."""
    if spec.name is not None:
        return spec.name
    if total == 1:
        return "client"
    return f"client{index}"


def client_names(spec: FleetJobSpec) -> List[str]:
    total = len(spec.clients)
    return [_client_name(i, c, total) for i, c in enumerate(spec.clients)]


@dataclass(frozen=True)
class ShardPlan:
    """The partition of one :class:`FleetJobSpec` into worker shards."""

    spec: FleetJobSpec
    #: Per-shard client index groups, contiguous and in client order.
    groups: Tuple[Tuple[int, ...], ...]
    #: Conservative lookahead window (ns): minimum client link latency.
    lookahead_ns: int

    @property
    def nshards(self) -> int:
        return len(self.groups)

    def shard_of(self, client_index: int) -> int:
        for shard, group in enumerate(self.groups):
            if client_index in group:
                return shard
        raise ConfigError(f"client {client_index} is in no shard")


def build_plan(spec: FleetJobSpec, shards: int) -> ShardPlan:
    """Partition ``spec``'s clients into at most ``shards`` groups.

    Groups are contiguous in client-index order so that same-timestamp
    boundary frames from different shards sort in the same client order
    the serial heap would have produced.
    """
    if shards < 1:
        raise ConfigError(f"shards must be >= 1, got {shards}")
    n = len(spec.clients)
    if n == 0:
        raise ConfigError("a fleet needs at least one client")
    for i, client in enumerate(spec.clients):
        server_spec = spec.servers[client.server]
        if getattr(server_spec, "is_local", False):
            raise ConfigError(
                f"client {i} mounts a local filesystem; sharded runs cut "
                "at network links, so every client must mount a remote server"
            )
    shards = min(shards, n)
    # Balanced contiguous groups: group g covers [g*n//s, (g+1)*n//s).
    groups = tuple(
        tuple(range(g * n // shards, (g + 1) * n // shards))
        for g in range(shards)
    )
    lookahead = min(
        (c.net or NetConfig.gigabit()).latency_ns for c in spec.clients
    )
    if lookahead <= 0:
        raise ConfigError(
            "sharded runs need a positive client link latency for the "
            "conservative lookahead window; got 0 ns"
        )
    return ShardPlan(spec=spec, groups=groups, lookahead_ns=lookahead)


@dataclass
class FleetFaults:
    """Declarative fault set for a fleet run, serial or sharded.

    Link faults are keyed by host *name* (client or server) and routed
    to the shard that owns the faulted link end: a client's uplink
    fault runs inside the owning client shard (frames are disturbed
    before they cross the boundary), while client downlink faults and
    everything server-side run in the hub, exactly where the serial
    switch would apply them.

    Server schedules are method call lists replayed against a
    :class:`~repro.faults.server.ServerFaultSchedule` built on the live
    (hub-side) server: ``[(server_index, (("crash_at", (ms(40),)),
    ("restart_at", (ms(55),))))]``.

    Client events are per-client fault windows applied to the owning
    stack's transport — today RPC slot starvation, expressed as
    ``[(client_index, (start_ns, end_ns, slots))]``.  They route with
    the stack: serial runs apply them on the topology's clients, sharded
    runs inside whichever client world owns that index.
    """

    uplink: Dict[str, object] = field(default_factory=dict)
    downlink: Dict[str, object] = field(default_factory=dict)
    server_schedules: Sequence[Tuple[int, Sequence[Tuple[str, tuple]]]] = ()
    client_events: Sequence[Tuple[int, Tuple[int, int, int]]] = ()

    def apply_serial(self, topo) -> List[object]:
        """Install the whole set on a serial :class:`Topology`.

        Returns the live ``ServerFaultSchedule`` objects (for log
        inspection); link faults mutate the switch ports in place, and
        client events arm on each owning stack (the live
        ``SlotStarvation`` objects land in :attr:`starvations`).
        """
        self.apply_links(topo.switch)
        self.starvations = self.apply_client_events(topo.clients)
        return self.apply_schedules(topo.servers)

    def apply_links(self, switch) -> None:
        for name, fault in self.uplink.items():
            switch.install_fault(name, uplink=fault)
        for name, fault in self.downlink.items():
            switch.install_fault(name, downlink=fault)

    def apply_schedules(self, servers) -> List[object]:
        from ...faults.server import ServerFaultSchedule

        out = []
        for index, ops in self.server_schedules:
            schedule = ServerFaultSchedule(servers[index])
            for method, args in ops:
                getattr(schedule, method)(*args)
            out.append(schedule)
        return out

    def apply_client_events(self, stacks) -> List[object]:
        """Arm client fault windows on the stacks this world owns.

        ``stacks`` may be any subset of the fleet (a shard's group);
        events whose client index is absent belong to another shard and
        are skipped.  Returns the live ``SlotStarvation`` objects.
        """
        from ...faults.client import SlotStarvation

        by_index = {stack.index: stack for stack in stacks}
        out = []
        for index, (start_ns, end_ns, slots) in self.client_events:
            stack = by_index.get(index)
            if stack is None:
                continue
            out.append(
                SlotStarvation(
                    stack.sim, stack.nfs.xprt, start_ns, end_ns, slots=slots
                )
            )
        return out

    def split(self, plan: ShardPlan) -> Tuple[List["FleetFaults"], "FleetFaults"]:
        """Route into (per-client-shard faults, hub faults)."""
        names = client_names(plan.spec)
        owner = {}
        for shard, group in enumerate(plan.groups):
            for index in group:
                owner[names[index]] = shard
        per_shard = [FleetFaults() for _ in plan.groups]
        hub = FleetFaults(server_schedules=self.server_schedules)
        for index, window in self.client_events:
            if not 0 <= index < len(names):
                raise ConfigError(
                    f"client event targets client {index}; fleet has "
                    f"{len(names)} client(s)"
                )
            shard = plan.shard_of(index)
            per_shard[shard].client_events = tuple(
                per_shard[shard].client_events
            ) + ((index, window),)
        for name, fault in self.uplink.items():
            shard = owner.get(name)
            if shard is None:  # server uplink: hub-side
                hub.uplink[name] = fault
            else:
                per_shard[shard].uplink[name] = fault
        for name, fault in self.downlink.items():
            # Downlinks are driven by the switch's forward path, which
            # always runs hub-side — even for client downlinks, whose
            # hub stub captures the disturbed arrival times.
            hub.downlink[name] = fault
        return per_shard, hub
