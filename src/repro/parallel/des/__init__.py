"""Sharded parallel discrete-event simulation for fleet topologies.

Partitions a fleet at its client access links into worker shards plus
a hub (switch + servers), synchronised by conservative lookahead
windows derived from the minimum client link latency.  ``shards=1``
degenerates to one worker and is — like every other shard count —
bit-identical to the serial event loop up to
:meth:`~repro.topology.fleet.FleetPointResult.run_fingerprint`.
"""

from .engine import ShardedFleetOutcome, run_sharded_fleet
from .plan import FleetFaults, ShardPlan, build_plan
from .worlds import BoundaryLink, ClientShardWorld, HubWorld

__all__ = [
    "run_sharded_fleet",
    "ShardedFleetOutcome",
    "FleetFaults",
    "ShardPlan",
    "build_plan",
    "BoundaryLink",
    "ClientShardWorld",
    "HubWorld",
]
