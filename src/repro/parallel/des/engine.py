"""Conservative window synchronisation across shard worlds.

The parent process owns the hub world (switch + servers) and drives one
worker per client shard.  Time advances in lookahead windows:

1. compute ``m`` — the earliest event anywhere (worker heap heads, the
   hub's heap head, undelivered boundary frames) — and open the window
   ``[.., m + W)`` where ``W`` is the minimum client link latency;
2. tell every worker to simulate up to the new horizon, handing it the
   boundary frames collected for it so far;
3. while the workers run, simulate the hub up to the *previous*
   horizon (the hub lags one window so that when the last client
   finishes, the hub has not yet run past the completion time);
4. collect worker outboxes for the hub's next window.

Any frame sent during a window arrives at least ``W`` later — at or
after the next horizon — so frames exchanged at window boundaries are
always injected before the receiving shard reaches their arrival time:
no rollback, no deadlock, and (empirically enforced by the fingerprint
tests) a bit-identical outcome to the serial event loop.

When every client has finished, the hub is clamped to
``run_window(tc + 1)`` where ``tc`` is the last client's completion
time: the serial loop stops at the event that completes the last
benchmark, so the hub must not process the stray retransmissions and
DRC replays that live beyond it.
"""

from __future__ import annotations

import multiprocessing
import traceback
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from ...errors import ConfigError, SimulationError
from ...topology.fleet import FleetJobSpec, FleetPointResult
from .plan import FleetFaults, ShardPlan, build_plan
from .worlds import ClientShardWorld, HubWorld

__all__ = ["run_sharded_fleet", "ShardedFleetOutcome"]


class InlineWorker:
    """Same-process worker: no pickling, for tests and debugging."""

    def __init__(
        self, plan: ShardPlan, shard_id: int, faults: FleetFaults, obs_config=None
    ):
        self.world = ClientShardWorld(plan, shard_id, faults, obs_config)
        self._reply: Optional[Dict[str, Any]] = None

    def send_window(self, end: int, messages) -> None:
        self._reply = self.world.run_window(end, messages)

    def recv_window(self) -> Dict[str, Any]:
        reply, self._reply = self._reply, None
        return reply

    def finalise(self) -> Dict[str, Any]:
        return self.world.finalise()

    def close(self) -> None:
        pass


def _worker_main(conn, plan, shard_id, faults, sanitize_config, obs_config) -> None:
    """Child-process loop: build the shard world, serve window commands."""
    from ...analysis.sanitize.runtime import sanitized

    guard = sanitized(sanitize_config) if sanitize_config is not None else nullcontext()
    try:
        with guard:
            world = ClientShardWorld(plan, shard_id, faults, obs_config)
            while True:
                cmd = conn.recv()
                if cmd[0] == "w":
                    conn.send(("ok", world.run_window(cmd[1], cmd[2])))
                elif cmd[0] == "f":
                    conn.send(("ok", world.finalise()))
                else:  # "q"
                    return
    except EOFError:
        return
    except BaseException:
        try:
            conn.send(("error", traceback.format_exc()))
        except Exception:
            pass


class ProcessWorker:
    """One shard in its own OS process, spoken to over a pipe."""

    def __init__(
        self,
        plan: ShardPlan,
        shard_id: int,
        faults: FleetFaults,
        sanitize_config,
        obs_config=None,
    ):
        parent_conn, child_conn = multiprocessing.Pipe()
        self.shard_id = shard_id
        self.process = multiprocessing.Process(
            target=_worker_main,
            args=(child_conn, plan, shard_id, faults, sanitize_config, obs_config),
            daemon=True,
        )
        self.process.start()
        child_conn.close()
        self.conn = parent_conn

    def send_window(self, end: int, messages) -> None:
        self.conn.send(("w", end, messages))

    def _recv(self) -> Dict[str, Any]:
        try:
            reply = self.conn.recv()
        except EOFError:
            raise ConfigError(
                f"shard {self.shard_id} worker died without a reply"
            ) from None
        if reply[0] == "error":
            raise ConfigError(
                f"shard {self.shard_id} worker failed:\n{reply[1]}"
            )
        return reply[1]

    def recv_window(self) -> Dict[str, Any]:
        return self._recv()

    def finalise(self) -> Dict[str, Any]:
        self.conn.send(("f",))
        return self._recv()

    def close(self) -> None:
        try:
            self.conn.send(("q",))
        except (BrokenPipeError, OSError):
            pass
        self.process.join(timeout=10)
        if self.process.is_alive():  # pragma: no cover - hard kill path
            self.process.terminate()
        self.conn.close()


@dataclass
class ShardedFleetOutcome:
    """A sharded run's reduced point plus the live hub-side state.

    The hub's server objects and switch stay in the parent process, so
    callers (the CLI's invariant checks) can inspect durable file state
    and port accounting exactly as they would after a serial run.
    """

    point: FleetPointResult
    servers: List[Any]
    switch: Any
    schedules: List[Any] = field(default_factory=list)
    findings: List[Any] = field(default_factory=list)
    #: The merged fleet-wide observer (None when run unobserved).
    observability: Any = None


class _ShippedFindings:
    """Duck-typed harness carrying findings audited in a worker."""

    def __init__(self, findings):
        self._findings = list(findings)

    def audit(self):
        return list(self._findings)


def run_sharded_fleet(
    spec: FleetJobSpec,
    shards: int,
    transport: str = "process",
    faults: Optional[FleetFaults] = None,
) -> ShardedFleetOutcome:
    """Run one fleet point across ``shards`` parallel shard worlds.

    ``transport`` is ``"process"`` (one OS process per client shard) or
    ``"inline"`` (every shard stepped in this process — same engine,
    same window schedule, no parallelism; used by the equivalence
    tests).  The result must be bit-identical to ``run_fleet_job(spec)``
    up to :meth:`FleetPointResult.run_fingerprint`.
    """
    if transport not in ("process", "inline"):
        raise ConfigError(f"unknown shard transport {transport!r}")
    from ...obs.core import active_session as obs_session

    obs_sess = obs_session()
    obs_config = (
        (obs_sess.capacity, obs_sess.window_ns) if obs_sess is not None else None
    )
    plan = build_plan(spec, shards)
    faults = faults or FleetFaults()
    shard_faults, hub_faults = faults.split(plan)

    from ...analysis.sanitize.runtime import active_session

    session = active_session()
    hub = HubWorld(plan, hub_faults, obs_config)
    if transport == "inline":
        workers: List[Any] = [
            InlineWorker(plan, s, shard_faults[s], obs_config)
            for s in range(plan.nshards)
        ]
    else:
        config = session.config if session is not None else None
        workers = [
            ProcessWorker(plan, s, shard_faults[s], config, obs_config)
            for s in range(plan.nshards)
        ]
    try:
        return _drive(spec, plan, hub, workers, session, transport)
    finally:
        for worker in workers:
            worker.close()


def _drive(spec, plan, hub, workers, session, transport) -> ShardedFleetOutcome:
    lookahead = plan.lookahead_ns
    nshards = plan.nshards
    hub_inbox: List[Any] = []
    pending: Dict[int, List[Any]] = {s: [] for s in range(nshards)}
    # Workload tasks spawn at t=0 in every shard, so everyone's first
    # event is at 0 until the first window reply says otherwise.
    worker_next: List[Optional[int]] = [0] * nshards
    worker_done = [False] * nshards
    ends: List[int] = []
    prev_horizon = 0

    while not all(worker_done):
        candidates = [t for t in worker_next if t is not None]
        hub_next = hub.next_event_time()
        if hub_next is not None:
            candidates.append(hub_next)
        candidates.extend(m[0] for m in hub_inbox)
        for msgs in pending.values():
            candidates.extend(m[0] for m in msgs)
        if not candidates:
            names = []
            for worker in workers:
                names.extend(worker.finalise()["pending"])
            raise ConfigError(
                f"fleet benchmark did not finish on {', '.join(names)}; "
                "simulation wedged?"
            )
        earliest = min(candidates)
        if spec.time_limit_ns is not None and earliest > spec.time_limit_ns:
            raise SimulationError(
                f"run_until hit the time limit at {spec.time_limit_ns} ns"
            )
        horizon = earliest + lookahead
        for shard, worker in enumerate(workers):
            worker.send_window(horizon, pending[shard])
            pending[shard] = []
        # The hub lags one window: while the workers simulate
        # [prev_horizon, horizon), it catches up to prev_horizon.
        hub.run_window(prev_horizon, hub_inbox)
        hub_inbox = []
        for shard, msgs in hub.drain().items():
            pending[shard].extend(msgs)
        for shard, worker in enumerate(workers):
            reply = worker.recv_window()
            hub_inbox.extend(reply["outbox"])
            worker_next[shard] = reply["next"]
            worker_done[shard] = reply["done"]
            if reply["done"]:
                ends.extend(reply["ends"])
        prev_horizon = horizon

    # Global completion: clamp the hub to the last client's completion
    # time, mirroring where the serial run_until loop stopped.
    clamp = (max(ends) if ends else hub.sim.now) + 1
    hub.run_window(max(clamp, hub.sim.now), hub_inbox)

    rows: Dict[int, Dict[str, Any]] = {}
    errors: List[Any] = []
    findings: List[Any] = []
    obs_payloads: List[Any] = []
    events = hub.sim.events_processed
    for worker in workers:
        final = worker.finalise()
        for index, row in final["rows"]:
            rows[index] = row
        errors.extend(final["errors"])
        findings.extend(final["findings"])
        obs_payloads.append(final.get("obs"))
        events += final["events"]
    if errors:
        errors.sort(key=lambda item: item[0])
        raise errors[0][1]
    if hub.obs is not None:
        # Fold every shard's telemetry into the hub observer in shard
        # order: trace records append (exports renumber canonically),
        # counters/histograms add, gauges join, timelines merge
        # window-wise — the result is the serial run's telemetry.
        for payload in obs_payloads:
            if payload is None:
                continue
            hub.obs.tracer.absorb(payload["records"])
            hub.obs.metrics.merge_state(payload["metrics"])
            hub.obs.timelines.merge_snapshot(payload["timelines"])
        from ...obs.core import active_session as obs_session

        obs_sess = obs_session()
        if obs_sess is not None:
            obs_sess.observabilities.append(hub.obs)
    if session is not None and transport == "process":
        # Worker-side sanitizer findings were audited in the child;
        # graft them into the caller's ambient session so its grouped
        # report sees the whole fleet.
        session.harnesses.append(_ShippedFindings(findings))
    point = FleetPointResult(
        clients=[rows[i] for i in sorted(rows)],
        servers=hub.server_rows(),
        events_processed=events,
    )
    return ShardedFleetOutcome(
        point=point,
        servers=hub.servers,
        switch=hub.switch,
        schedules=hub.schedules,
        findings=findings,
        observability=hub.obs,
    )
