"""Parallel sweep execution over independent simulated worlds."""

from .executor import JobSpec, PointResult, SweepExecutor, default_jobs, run_job

__all__ = ["JobSpec", "PointResult", "SweepExecutor", "run_job", "default_jobs"]
