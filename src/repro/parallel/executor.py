"""Parallel sweep execution.

Every sweep point (client variant x target x file size x configs) is a
fully independent simulated world, which makes the paper's 25-450 MB
sweeps embarrassingly parallel.  A :class:`JobSpec` captures one point
as a picklable value object; :func:`run_job` materialises the
:class:`~repro.bench.runner.TestBed`, runs the sequential-write
benchmark, and reduces the outcome to a :class:`PointResult` that
survives both pickling (process pools) and JSON (the result cache).

:class:`SweepExecutor` fans specs out over a
:class:`concurrent.futures.ProcessPoolExecutor`; with ``jobs=1`` it runs
them in-process, in order, with no pool at all — the two modes are
bit-identical because each job owns a pristine simulator.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, List, Optional, Sequence, Union

from ..cache import ResultCache, fingerprint
from ..config import (
    ClientHwConfig,
    FilerConfig,
    LinuxServerConfig,
    LocalFsConfig,
    MountConfig,
    NetConfig,
    NfsClientConfig,
)
from ..errors import ConfigError
from ..units import throughput, to_mbps

__all__ = [
    "JobSpec",
    "PointResult",
    "run_job",
    "SweepExecutor",
    "default_jobs",
    "register_job_type",
    "result_from_payload",
]


def default_jobs() -> int:
    """A sensible worker count: all cores, at least one."""
    return max(1, os.cpu_count() or 1)


@dataclass(frozen=True)
class JobSpec:
    """One sweep point, expressed entirely as picklable configuration.

    ``client`` is a variant name (``"stock"``, ``"enhanced"``...) or an
    explicit :class:`~repro.config.NfsClientConfig`; ``None`` config
    fields take the :class:`~repro.bench.runner.TestBed` defaults.
    """

    target: str
    client: Union[str, NfsClientConfig]
    file_bytes: int
    chunk_bytes: int = 8192
    do_fsync: bool = True
    hw: Optional[ClientHwConfig] = None
    net: Optional[NetConfig] = None
    mount: Optional[MountConfig] = None
    filer_config: Optional[FilerConfig] = None
    linux_config: Optional[LinuxServerConfig] = None
    local_config: Optional[LocalFsConfig] = None
    time_limit_ns: Optional[int] = None

    def fingerprint(self, version: Optional[str] = None) -> str:
        """Content address of this point (see :mod:`repro.cache`)."""
        return fingerprint(self, version=version)


@dataclass
class PointResult:
    """The benchmark outcome of one :class:`JobSpec`, JSON-round-trippable."""

    file_bytes: int
    chunk_bytes: int
    write_elapsed_ns: int
    flush_elapsed_ns: int
    close_elapsed_ns: int
    #: Simulator callbacks dispatched for this point (events/sec telemetry).
    events_processed: int
    latency_starts_ns: List[int] = field(default_factory=list)
    latencies_ns: List[int] = field(default_factory=list)

    @property
    def write_mbps(self) -> float:
        """write()-calls-only throughput in MB/s (Figs. 1 and 7).

        Computed with the same :mod:`repro.units` helpers as
        :class:`~repro.bench.bonnie.BenchmarkResult`, so a cached or
        pooled point is bit-identical to an in-process one.
        """
        return to_mbps(throughput(self.file_bytes, self.write_elapsed_ns))

    @property
    def flush_mbps(self) -> float:
        return to_mbps(throughput(self.file_bytes, self.flush_elapsed_ns))

    @property
    def close_mbps(self) -> float:
        return to_mbps(throughput(self.file_bytes, self.close_elapsed_ns))

    def to_payload(self) -> Dict[str, Any]:
        return {
            "file_bytes": self.file_bytes,
            "chunk_bytes": self.chunk_bytes,
            "write_elapsed_ns": self.write_elapsed_ns,
            "flush_elapsed_ns": self.flush_elapsed_ns,
            "close_elapsed_ns": self.close_elapsed_ns,
            "events_processed": self.events_processed,
            "latency_starts_ns": self.latency_starts_ns,
            "latencies_ns": self.latencies_ns,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "PointResult":
        return cls(**payload)


# Additional sweepable job types (spec class -> runner), registered by
# the modules that define them — e.g. importing ``repro.topology.fleet``
# registers FleetJobSpec.  Workers re-register automatically: unpickling
# a registered spec imports its defining module.
_JOB_RUNNERS: Dict[type, Any] = {}
_PAYLOAD_KINDS: Dict[str, Any] = {}


def register_job_type(spec_type, runner, payload_kind, loader) -> None:
    """Teach the executor a new sweep point type.

    ``runner(spec)`` executes one point; cached payloads carrying
    ``{"__kind__": payload_kind}`` are revived through ``loader``.
    """
    _JOB_RUNNERS[spec_type] = runner
    _PAYLOAD_KINDS[payload_kind] = loader


def result_from_payload(payload: Dict[str, Any]):
    """Revive a cached result of any registered kind.

    Payloads without a ``__kind__`` marker are classic
    :class:`PointResult` rows — the cache format predating multi-kind
    sweeps is read unchanged.
    """
    kind = payload.get("__kind__", "point")
    if kind == "point":
        return PointResult.from_payload(payload)
    try:
        loader = _PAYLOAD_KINDS[kind]
    except KeyError:
        raise ConfigError(
            f"cached result has unknown kind {kind!r}; import the module "
            "that registers it before reading the cache"
        ) from None
    return loader(payload)


def run_job(spec) -> Any:
    """Run one sweep point in a pristine world, reduce the result.

    Module-level so process-pool workers can unpickle a reference to it.
    Dispatches on the spec's type: classic :class:`JobSpec` points build
    a single-client test bed; registered types (fleet points, ...) run
    through their registered runner.
    """
    runner = _JOB_RUNNERS.get(type(spec))
    if runner is not None:
        return runner(spec)
    if not isinstance(spec, JobSpec):
        raise ConfigError(
            f"unknown job spec type {type(spec).__name__}; import the "
            "module that registers it before running sweeps"
        )
    import dataclasses

    from ..bench.runner import TestBed
    from ..topology.spec import ServerSpec

    server = ServerSpec.from_legacy(
        spec.target,
        filer_config=spec.filer_config,
        linux_config=spec.linux_config,
        local_config=spec.local_config,
    )
    # Legacy semantics: a custom client net (e.g. injected loss) also
    # applies to the server's switch port, except linux-100's fixed
    # fast Ethernet.
    if spec.net is not None and server.kind in ("netapp", "linux"):
        server = dataclasses.replace(server, net=spec.net)
    bed = TestBed(
        target=spec.target,
        client=spec.client,
        hw=spec.hw,
        net=spec.net,
        mount=spec.mount,
        server=server,
    )
    result = bed.run_sequential_write(
        spec.file_bytes,
        chunk_bytes=spec.chunk_bytes,
        do_fsync=spec.do_fsync,
        time_limit_ns=spec.time_limit_ns,
    )
    return PointResult(
        file_bytes=result.file_bytes,
        chunk_bytes=result.chunk_bytes,
        write_elapsed_ns=result.write_elapsed_ns,
        flush_elapsed_ns=result.flush_elapsed_ns,
        close_elapsed_ns=result.close_elapsed_ns,
        events_processed=bed.sim.events_processed,
        latency_starts_ns=result.trace.starts_ns,
        latencies_ns=result.trace.latencies_ns,
    )


class SweepExecutor:
    """Runs a batch of :class:`JobSpec` points, optionally cached.

    Results come back in spec order regardless of completion order, so
    ``jobs=1``, ``jobs=N`` and a warm cache all produce identical
    sweeps.  Cache lookups happen before any job is dispatched; only the
    misses reach the pool, and their results are stored on the way out.
    """

    def __init__(self, jobs: int = 1, cache: Optional[ResultCache] = None):
        if jobs < 1:
            raise ConfigError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.cache = cache

    def map(self, specs: Iterable[Any]) -> List[Any]:
        """Execute every spec; returns results in the given order."""
        spec_list: List[Any] = list(specs)
        results: List[Optional[Any]] = [None] * len(spec_list)
        misses: List[int] = []
        keys: Dict[int, str] = {}

        if self.cache is not None:
            for i, spec in enumerate(spec_list):
                keys[i] = spec.fingerprint()
                payload = self.cache.get(keys[i])
                if payload is not None:
                    results[i] = result_from_payload(payload)
                else:
                    misses.append(i)
        else:
            misses = list(range(len(spec_list)))

        for i, outcome in zip(misses, self._execute([spec_list[i] for i in misses])):
            results[i] = outcome
            if self.cache is not None:
                self.cache.put(keys[i], outcome.to_payload())

        return results  # type: ignore[return-value]  # every slot is filled

    def _execute(self, specs: Sequence[Any]) -> List[Any]:
        if self.jobs == 1 or len(specs) <= 1:
            return [run_job(spec) for spec in specs]
        workers = min(self.jobs, len(specs))
        with ProcessPoolExecutor(max_workers=workers) as pool:
            return list(pool.map(run_job, specs))
