"""Synchronization primitives for simulated tasks.

All primitives are strictly FIFO: waiters are served in the order they
blocked, which keeps runs deterministic and mirrors the wait queues of
the Linux kernel paths we model.

:class:`MonitoredLock` is the building block for the Big Kernel Lock
model — it is reentrant per task (like ``lock_kernel()``) and records
contention statistics the experiments report on.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Optional, Tuple

from ..errors import SimulationError
from .core import Simulator
from .task import Task, Waitable

__all__ = ["Event", "Lock", "MonitoredLock", "Semaphore", "WaitQueue", "LockStats"]


class Event(Waitable):
    """A one-shot level-triggered event carrying an optional value."""

    __slots__ = ("_sim", "fired", "value", "_waiters")

    def __init__(self, sim: Simulator):
        self._sim = sim
        self.fired = False
        self.value: Any = None
        self._waiters: Deque[Task] = deque()

    def trigger(self, value: Any = None) -> None:
        """Fire the event, resuming all current and future waiters."""
        if self.fired:
            raise SimulationError("event triggered twice")
        self.fired = True
        self.value = value
        waiters, self._waiters = self._waiters, deque()
        for task in waiters:
            task._resume(value)

    def _arm(self, task: Task) -> None:
        if self.fired:
            task._resume(self.value)
        else:
            self._waiters.append(task)


class _Acquisition(Waitable):
    """Pending lock/semaphore acquisition."""

    __slots__ = ("granted", "task")

    def __init__(self) -> None:
        self.granted = False
        self.task: Optional[Task] = None

    def grant(self) -> None:
        if self.task is not None:
            self.task._resume(None)
        else:
            self.granted = True

    def _arm(self, task: Task) -> None:
        if self.granted:
            task._resume(None)
        else:
            self.task = task


class Lock:
    """Non-reentrant FIFO mutex.

    Usage::

        yield lock.acquire()
        try:
            ...
        finally:
            lock.release()
    """

    def __init__(self, sim: Simulator, name: str = "lock"):
        self._sim = sim
        self.name = name
        self.locked = False
        self._waiters: Deque[_Acquisition] = deque()

    def acquire(self) -> Waitable:
        acq = _Acquisition()
        if not self.locked:
            self.locked = True
            acq.granted = True
        else:
            self._waiters.append(acq)
        return acq

    def release(self) -> None:
        if not self.locked:
            raise SimulationError(f"{self.name}: release of unlocked lock")
        if self._waiters:
            self._waiters.popleft().grant()
        else:
            self.locked = False


class LockStats:
    """Aggregated contention statistics for a :class:`MonitoredLock`."""

    __slots__ = (
        "acquisitions",
        "contended",
        "total_wait_ns",
        "total_hold_ns",
        "max_wait_ns",
        "max_hold_ns",
        "wait_by_label",
        "hold_by_label",
    )

    def __init__(self) -> None:
        self.acquisitions = 0
        self.contended = 0
        self.total_wait_ns = 0
        self.total_hold_ns = 0
        self.max_wait_ns = 0
        self.max_hold_ns = 0
        self.wait_by_label: Dict[str, int] = {}
        self.hold_by_label: Dict[str, int] = {}

    @property
    def contention_ratio(self) -> float:
        """Fraction of acquisitions that had to wait."""
        if self.acquisitions == 0:
            return 0.0
        return self.contended / self.acquisitions

    def mean_wait_ns(self) -> float:
        if self.acquisitions == 0:
            return 0.0
        return self.total_wait_ns / self.acquisitions

    def add_wait(self, label: str, wait_ns: int) -> None:
        self.wait_by_label[label] = self.wait_by_label.get(label, 0) + wait_ns
        self.total_wait_ns += wait_ns
        if wait_ns > self.max_wait_ns:
            self.max_wait_ns = wait_ns

    def add_hold(self, label: str, hold_ns: int) -> None:
        self.hold_by_label[label] = self.hold_by_label.get(label, 0) + hold_ns
        self.total_hold_ns += hold_ns
        if hold_ns > self.max_hold_ns:
            self.max_hold_ns = hold_ns


class MonitoredLock:
    """Reentrant FIFO mutex with contention accounting.

    The owner is the task holding it; a task may acquire the lock again
    while holding it (the hold depth is tracked, like ``lock_kernel()``'s
    ``lock_depth``).  ``acquire``/``release`` must be driven from task
    context via ``yield from lock.hold(...)`` or the lower-level
    generator helpers below.
    """

    def __init__(self, sim: Simulator, name: str = "mlock"):
        self._sim = sim
        self.name = name
        self.owner: Optional[Task] = None
        self.depth = 0
        self._held_since = 0
        self._hold_label = ""
        self._waiters: Deque[Tuple[_Acquisition, Task, int]] = deque()
        self.stats = LockStats()
        #: optional passive observer (see repro.analysis.sanitize).
        self.sanitizer = None

    @property
    def locked(self) -> bool:
        return self.owner is not None

    def acquire(self, label: str = "unknown"):
        """Generator: acquire the lock (reentrantly), recording wait time."""
        task = self._sim.current_task
        if task is None:
            raise SimulationError(f"{self.name}: acquire outside task context")
        self.stats.acquisitions += 1
        if self.owner is task:
            self.depth += 1
            if self.sanitizer is not None:
                self.sanitizer.on_reenter(self, task)
            return
            yield  # pragma: no cover - makes this a generator
        if self.owner is None:
            self._take(task, label)
            if self.sanitizer is not None:
                self.sanitizer.on_acquire(self, task, label)
            return
            yield  # pragma: no cover
        self.stats.contended += 1
        start = self._sim.now
        acq = _Acquisition()
        self._waiters.append((acq, task, start))
        if self.sanitizer is not None:
            self.sanitizer.on_block(self, task, label)
        yield acq
        # _handoff assigned ownership to us before resuming.
        wait = self._sim.now - start
        self.stats.add_wait(label, wait)
        self._hold_label = label
        self._held_since = self._sim.now

    def release(self) -> None:
        task = self._sim.current_task
        if self.owner is not task:
            raise SimulationError(
                f"{self.name}: release by non-owner "
                f"({getattr(task, 'name', None)!r} vs "
                f"{getattr(self.owner, 'name', None)!r})"
            )
        if self.depth > 1:
            self.depth -= 1
            if self.sanitizer is not None:
                self.sanitizer.on_exit(self, task)
            return
        self.stats.add_hold(self._hold_label, self._sim.now - self._held_since)
        self.depth = 0
        self.owner = None
        if self.sanitizer is not None:
            self.sanitizer.on_release(self, task)
        if self._waiters:
            acq, waiter_task, _start = self._waiters.popleft()
            self.owner = waiter_task
            self.depth = 1
            if self.sanitizer is not None:
                self.sanitizer.on_handoff(self, waiter_task)
            acq.grant()

    def hold(self, label: str, body):
        """Generator: run generator ``body`` while holding the lock."""
        yield from self.acquire(label)
        try:
            result = yield from body
        finally:
            # Skip the release during generator GC (current_task is then
            # None): the abandoned simulation's lock state is moot.
            if self._sim.current_task is self.owner:
                self.release()
        return result

    def _take(self, task: Task, label: str) -> None:
        self.owner = task
        self.depth = 1
        self._held_since = self._sim.now
        self._hold_label = label


class Semaphore:
    """Counting semaphore with FIFO waiters."""

    def __init__(self, sim: Simulator, value: int, name: str = "sem"):
        if value < 0:
            raise SimulationError(f"{name}: negative initial value")
        self._sim = sim
        self.name = name
        self.value = value
        self._waiters: Deque[_Acquisition] = deque()

    def acquire(self) -> Waitable:
        acq = _Acquisition()
        if self.value > 0 and not self._waiters:
            self.value -= 1
            acq.granted = True
        else:
            self._waiters.append(acq)
        return acq

    def release(self) -> None:
        if self._waiters:
            self._waiters.popleft().grant()
        else:
            self.value += 1


class WaitQueue:
    """Condition-style queue: tasks sleep until somebody wakes them.

    This is the analogue of the kernel's wait-queue + ``wake_up`` pattern
    used, e.g., to throttle writers against ``MAX_REQUEST_HARD``.
    Waiters must re-check their predicate after waking (spurious-safe
    loop), exactly as ``wait_event`` does.
    """

    def __init__(self, sim: Simulator, name: str = "waitq"):
        self._sim = sim
        self.name = name
        self._waiters: Deque[Event] = deque()
        self.total_sleeps = 0
        self.total_sleep_ns = 0
        #: optional passive observer (see repro.analysis.sanitize).
        self.sanitizer = None

    def sleep(self):
        """Generator: block until the next wake_one/wake_all."""
        event = Event(self._sim)
        self._waiters.append(event)
        if self.sanitizer is not None:
            self.sanitizer.on_sleep(self, event)
        self.total_sleeps += 1
        start = self._sim.now
        yield event
        self.total_sleep_ns += self._sim.now - start

    def wait_until(self, predicate):
        """Generator: sleep in a loop until ``predicate()`` is true."""
        while not predicate():
            yield from self.sleep()

    def wake_one(self) -> None:
        if self._waiters:
            event = self._waiters.popleft()
            if self.sanitizer is not None:
                self.sanitizer.on_wake(self, event)
            event.trigger()

    def wake_all(self) -> None:
        waiters, self._waiters = self._waiters, deque()
        for event in waiters:
            if self.sanitizer is not None:
                self.sanitizer.on_wake(self, event)
            event.trigger()

    @property
    def sleeping(self) -> int:
        return len(self._waiters)
