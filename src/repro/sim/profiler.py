"""Sampling profiler over simulated CPU cores.

The paper's methodology ("a kernel-profiling tool that provides a
sample-driven histogram of kernel execution") is reproduced here: at a
fixed period the profiler records which label each core is executing.
Reports therefore look like the readprofile output the authors used to
find ``nfs_find_request`` and the kernel-lock text section.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..errors import SimulationError
from .core import Simulator
from .cpu import CpuSet

__all__ = ["SamplingProfiler"]


class SamplingProfiler:
    """Samples ``cpu.core_labels`` every ``period`` nanoseconds."""

    IDLE = "<idle>"

    def __init__(self, sim: Simulator, cpus: CpuSet, period: int):
        if period <= 0:
            raise SimulationError("profiler period must be positive")
        self._sim = sim
        self._cpus = cpus
        self.period = period
        self.samples: Dict[str, int] = {}
        self.total_samples = 0
        self._running = False
        self._handle = None

    def start(self) -> None:
        if self._running:
            raise SimulationError("profiler already running")
        self._running = True
        self._handle = self._sim.schedule(self.period, self._tick)

    def stop(self) -> None:
        self._running = False
        if self._handle is not None:
            self._handle.cancel()
            self._handle = None

    def _tick(self) -> None:
        if not self._running:
            return
        for label in self._cpus.core_labels:
            key = label if label is not None else self.IDLE
            self.samples[key] = self.samples.get(key, 0) + 1
            self.total_samples += 1
        self._handle = self._sim.schedule(self.period, self._tick)

    # -- reporting ----------------------------------------------------------

    def top(self, n: int = 10, include_idle: bool = False) -> List[Tuple[str, int]]:
        """Hottest labels by sample count, descending."""
        items = [
            (label, count)
            for label, count in self.samples.items()
            if include_idle or label != self.IDLE
        ]
        items.sort(key=lambda kv: -kv[1])
        return items[:n]

    def fraction(self, label: str) -> float:
        """Fraction of busy samples attributed to ``label``."""
        busy = self.total_samples - self.samples.get(self.IDLE, 0)
        if busy == 0:
            return 0.0
        return self.samples.get(label, 0) / busy

    def report(self, n: int = 10) -> str:
        """Human-readable profile, readprofile style."""
        lines = ["samples  label"]
        for label, count in self.top(n, include_idle=True):
            lines.append(f"{count:7d}  {label}")
        return "\n".join(lines)
