"""Generator-based simulated tasks.

A task is a Python generator that ``yield``\\ s :class:`Waitable` objects
(timeouts, events, lock acquisitions, CPU execution slots...).  Nested
simulated functions compose with ``yield from``, so only the leaves of
the call tree ever yield an actual waitable.

Example::

    def worker(sim):
        yield sim.timeout(us(10))
        yield from do_more_work(sim)
        return 42

    task = sim.spawn(worker(sim), name="worker")
    sim.run()
    assert task.result == 42

Failure semantics: an exception escaping a task is re-raised inside any
joiner.  If nobody is joining a non-daemon task, the exception propagates
out of :meth:`Simulator.run` wrapped in :class:`TaskFailed` — errors never
pass silently.
"""

from __future__ import annotations

from typing import Any, List, Optional

from ..errors import SimulationError, TaskFailed
from .core import Simulator

__all__ = ["Waitable", "Timeout", "Task", "AllOf"]


class Waitable:
    """Anything a task may ``yield``.

    Subclasses implement :meth:`_arm`, which is called exactly once with
    the yielding task; the waitable must eventually call
    ``task._resume(value)`` or ``task._throw(exc)``.
    """

    __slots__ = ()

    def _arm(self, task: "Task") -> None:  # pragma: no cover - interface
        raise NotImplementedError


class Timeout(Waitable):
    """Fires after a fixed simulated delay."""

    __slots__ = ("_sim", "_delay")

    def __init__(self, sim: Simulator, delay: int):
        if delay < 0:
            raise SimulationError(f"negative timeout {delay}")
        self._sim = sim
        self._delay = delay

    def _arm(self, task: "Task") -> None:
        self._sim.call_after(self._delay, task._resume, None)


class Task(Waitable):
    """Drives a generator through the event loop.

    Yielding a task from another task joins it: the joiner resumes when
    the task finishes, receiving its return value (or its exception).
    """

    __slots__ = (
        "_sim",
        "_gen",
        "name",
        "daemon",
        "done",
        "result",
        "error",
        "_joiners",
        "_cancelled",
    )

    def __init__(
        self,
        sim: Simulator,
        generator,
        name: Optional[str] = None,
        daemon: bool = False,
    ):
        if not hasattr(generator, "send"):
            raise SimulationError(
                f"spawn() needs a generator, got {type(generator).__name__}"
            )
        self._sim = sim
        self._gen = generator
        self.name = name or getattr(generator, "__name__", "task")
        self.daemon = daemon
        self.done = False
        self.result: Any = None
        self.error: Optional[BaseException] = None
        self._joiners: List["Task"] = []
        self._cancelled = False
        sim.call_after(0, self._step, None, None)

    # -- public ------------------------------------------------------------

    def join(self) -> "Task":
        """Waitable alias: ``yield task.join()`` reads naturally."""
        return self

    def cancel(self) -> None:
        """Stop the task by throwing GeneratorExit at its next step."""
        self._cancelled = True

    # -- Waitable ----------------------------------------------------------

    def _arm(self, task: "Task") -> None:
        if self.done:
            if self.error is not None:
                task._throw(self.error)
            else:
                task._resume(self.result)
        else:
            self._joiners.append(task)

    # -- machinery -----------------------------------------------------------

    def _resume(self, value: Any) -> None:
        self._sim.call_after(0, self._step, value, None)

    def _throw(self, exc: BaseException) -> None:
        self._sim.call_after(0, self._step, None, exc)

    def _step(self, value: Any, exc: Optional[BaseException]) -> None:
        if self.done:
            return
        if self._cancelled:
            self._gen.close()
            self._finish(None, None)
            return
        prev = self._sim.current_task
        self._sim.current_task = self
        try:
            if exc is not None:
                item = self._gen.throw(exc)
            else:
                item = self._gen.send(value)
        except StopIteration as stop:
            self._finish(getattr(stop, "value", None), None)
            return
        except BaseException as err:  # noqa: BLE001 - must capture task failures
            self._finish(None, err)
            return
        finally:
            self._sim.current_task = prev
        if not isinstance(item, Waitable):
            self._finish(
                None,
                SimulationError(
                    f"task {self.name!r} yielded {type(item).__name__}, "
                    "expected a Waitable"
                ),
            )
            return
        item._arm(self)

    def _finish(self, result: Any, error: Optional[BaseException]) -> None:
        self.done = True
        self.result = result
        self.error = error
        joiners, self._joiners = self._joiners, []
        if error is not None and not joiners and not self.daemon:
            raise TaskFailed(self.name, repr(error)) from error
        for joiner in joiners:
            if error is not None:
                joiner._throw(error)
            else:
                joiner._resume(result)


class AllOf(Waitable):
    """Resumes once every given task has finished.

    The resume value is the list of task results in the given order.
    If any task fails, the first failure (in completion order) is
    re-raised in the waiter.
    """

    __slots__ = ("_tasks",)

    def __init__(self, tasks: List[Task]):
        self._tasks = list(tasks)

    def _arm(self, task: Task) -> None:
        remaining = [t for t in self._tasks if not t.done]
        failed = next((t for t in self._tasks if t.done and t.error), None)
        if failed is not None:
            task._throw(failed.error)  # type: ignore[arg-type]
            return
        if not remaining:
            task._resume([t.result for t in self._tasks])
            return
        state = {"left": len(remaining), "delivered": False}

        def plant(target: Task) -> None:
            waiter = _Notify(state, self._tasks, task)
            target._joiners.append(waiter)

        for t in remaining:
            plant(t)


class _Notify(Task):
    """Internal joiner used by :class:`AllOf` (duck-typed, never stepped)."""

    def __init__(self, state, tasks, waiter):  # noqa: D401 - internal
        # Deliberately does NOT call Task.__init__; only _resume/_throw
        # are ever invoked on it, via the joined task's completion path.
        self._state = state
        self._tasks = tasks
        self._waiter = waiter

    def _resume(self, value: Any) -> None:
        self._state["left"] -= 1
        if self._state["left"] == 0 and not self._state["delivered"]:
            self._state["delivered"] = True
            self._waiter._resume([t.result for t in self._tasks])

    def _throw(self, exc: BaseException) -> None:
        if not self._state["delivered"]:
            self._state["delivered"] = True
            self._waiter._throw(exc)
