"""Structured event tracing.

Tracing is off by default (zero overhead beyond a boolean check).  When
enabled it records ``(time, component, kind, fields)`` tuples into a
bounded ring, which tests and debugging sessions can inspect.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, Dict, Iterable, List, NamedTuple, Optional

from .core import Simulator

__all__ = ["Tracer", "TraceRecord"]


class TraceRecord(NamedTuple):
    time: int
    component: str
    kind: str
    fields: Dict[str, Any]


class Tracer:
    """Bounded in-memory trace sink."""

    def __init__(self, sim: Simulator, capacity: int = 100_000, enabled: bool = False):
        self._sim = sim
        self.enabled = enabled
        self._records: Deque[TraceRecord] = deque(maxlen=capacity)

    def record(self, component: str, kind: str, **fields: Any) -> None:
        if not self.enabled:
            return
        self._records.append(TraceRecord(self._sim.now, component, kind, fields))

    def record_at(self, time: int, component: str, kind: str, **fields: Any) -> None:
        """Record with an explicit timestamp.

        Used for events whose span is known at schedule time (a frame's
        arrival is computed when it is queued) — the ring stays in
        append order, which exporters tolerate.
        """
        if not self.enabled:
            return
        self._records.append(TraceRecord(time, component, kind, fields))

    def records(
        self, component: Optional[str] = None, kind: Optional[str] = None
    ) -> List[TraceRecord]:
        """Records, optionally filtered by component and/or kind."""
        out = []
        for rec in self._records:
            if component is not None and rec.component != component:
                continue
            if kind is not None and rec.kind != kind:
                continue
            out.append(rec)
        return out

    def absorb(self, records: Iterable[TraceRecord]) -> None:
        """Append another tracer's records (shard merge).

        Records arrive as plain tuples after a pickle round-trip; they
        are re-wrapped so downstream filters see :class:`TraceRecord`.
        """
        for rec in records:
            self._records.append(TraceRecord(*rec))

    def clear(self) -> None:
        self._records.clear()

    def __len__(self) -> int:
        return len(self._records)
