"""CPU model: a set of cores on which tasks charge labelled compute time.

A task performs work with ``yield from cpus.execute(ns, label)``.  The
request queues until a core is free; the core then runs it to completion
(work units in this codebase are all a few tens of microseconds, so
non-preemptive slots are an adequate model of the 2.4 kernel, which did
not preempt kernel code either).

Three priority levels mirror interrupt > softirq/kernel daemon > user
work.  Exact per-label time accounting feeds the profiler-style reports
the paper relies on for its diagnosis.
"""

from __future__ import annotations

import heapq
from typing import Dict, List, Optional, Tuple

from ..errors import SimulationError
from .core import Simulator
from .sync import Event

__all__ = ["CpuSet", "PRIO_INTERRUPT", "PRIO_KERNEL", "PRIO_USER"]

PRIO_INTERRUPT = 0
PRIO_KERNEL = 1
PRIO_USER = 2


class _ExecRequest:
    __slots__ = ("priority", "seq", "duration", "label", "event")

    def __init__(self, priority: int, seq: int, duration: int, label: str, event: Event):
        self.priority = priority
        self.seq = seq
        self.duration = duration
        self.label = label
        self.event = event


class CpuSet:
    """N identical cores with a shared priority run queue."""

    def __init__(self, sim: Simulator, ncpus: int, name: str = "cpu"):
        if ncpus < 1:
            raise SimulationError(f"{name}: need at least one CPU")
        self._sim = sim
        self.name = name
        self.ncpus = ncpus
        self._free: List[int] = list(range(ncpus))
        self._seq = 0
        self._queue: List[Tuple[int, int, _ExecRequest]] = []
        #: Label currently executing on each core (None = idle); sampled
        #: by the profiler.
        self.core_labels: List[Optional[str]] = [None] * ncpus
        #: Exact nanoseconds of compute charged per label.
        self.time_by_label: Dict[str, int] = {}
        self.total_busy_ns = 0
        self._created_at = sim.now

    # -- work submission ------------------------------------------------------

    def execute(self, duration: int, label: str = "kernel", priority: int = PRIO_USER):
        """Generator: consume ``duration`` ns of CPU under ``label``."""
        if duration < 0:
            raise SimulationError(f"{self.name}: negative duration {duration}")
        if duration == 0:
            return
            yield  # pragma: no cover - generator marker
        event = Event(self._sim)
        self._seq += 1
        req = _ExecRequest(priority, self._seq, duration, label, event)
        if self._free:
            self._start(self._free.pop(), req)
        else:
            heapq.heappush(self._queue, (priority, req.seq, req))
        yield event

    # -- internals -------------------------------------------------------------

    def _start(self, core: int, req: _ExecRequest) -> None:
        self.core_labels[core] = req.label
        self._sim.call_after(req.duration, self._complete, core, req)

    def _complete(self, core: int, req: _ExecRequest) -> None:
        self.time_by_label[req.label] = (
            self.time_by_label.get(req.label, 0) + req.duration
        )
        self.total_busy_ns += req.duration
        self.core_labels[core] = None
        if self._queue:
            _prio, _seq, nxt = heapq.heappop(self._queue)
            self._start(core, nxt)
        else:
            self._free.append(core)
        req.event.trigger()

    # -- reporting --------------------------------------------------------------

    def utilization(self) -> float:
        """Mean core utilization since creation."""
        elapsed = self._sim.now - self._created_at
        if elapsed <= 0:
            return 0.0
        return self.total_busy_ns / (elapsed * self.ncpus)

    def top_labels(self, n: int = 10) -> List[Tuple[str, int]]:
        """Labels by exact CPU time, descending — the profiler's view."""
        ranked = sorted(self.time_by_label.items(), key=lambda kv: -kv[1])
        return ranked[:n]
