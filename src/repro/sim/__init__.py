"""Deterministic discrete-event simulation kernel.

Public surface::

    from repro.sim import Simulator, Task, Timeout, Event, Lock,
        MonitoredLock, Semaphore, WaitQueue, CpuSet, SamplingProfiler,
        RngStreams, Tracer
"""

from .core import EventHandle, Simulator
from .cpu import PRIO_INTERRUPT, PRIO_KERNEL, PRIO_USER, CpuSet
from .profiler import SamplingProfiler
from .rng import RngStreams
from .sync import Event, Lock, LockStats, MonitoredLock, Semaphore, WaitQueue
from .task import AllOf, Task, Timeout, Waitable
from .trace import TraceRecord, Tracer

__all__ = [
    "Simulator",
    "EventHandle",
    "Task",
    "Timeout",
    "Waitable",
    "AllOf",
    "Event",
    "Lock",
    "LockStats",
    "MonitoredLock",
    "Semaphore",
    "WaitQueue",
    "CpuSet",
    "PRIO_INTERRUPT",
    "PRIO_KERNEL",
    "PRIO_USER",
    "SamplingProfiler",
    "RngStreams",
    "Tracer",
]
