"""Named deterministic random-number streams.

Every stochastic model component draws from its own named stream, so
adding randomness to one component never perturbs another — runs stay
comparable across configurations, the property the paper's single-run
methodology depends on (§2.2).
"""

from __future__ import annotations

# The one sanctioned use of the random module: this is where the named,
# seeded streams every other module must draw from are minted.
import random  # noqa: DET105
import zlib
from typing import Dict

__all__ = ["RngStreams"]


class RngStreams:
    """Factory for independent :class:`random.Random` streams."""

    def __init__(self, seed: int = 0):
        self.seed = seed
        self._streams: Dict[str, random.Random] = {}

    def stream(self, name: str) -> random.Random:
        """The stream for ``name`` (created on first use)."""
        rng = self._streams.get(name)
        if rng is None:
            derived = (self.seed << 32) ^ zlib.crc32(name.encode("utf-8"))
            rng = random.Random(derived)
            self._streams[name] = rng
        return rng
