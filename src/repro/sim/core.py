"""Deterministic discrete-event simulation core.

The :class:`Simulator` owns an integer-nanosecond clock and a binary-heap
event queue.  Events scheduled for the same instant fire in the order
they were scheduled (a monotonically increasing sequence number breaks
ties), which makes every run bit-for-bit reproducible.

Simulated concurrency is expressed with generator-based tasks (see
:mod:`repro.sim.task`); the core only knows about timed callbacks.

Two scheduling lanes share one heap:

* :meth:`Simulator.schedule` / :meth:`Simulator.schedule_at` return a
  cancellable :class:`EventHandle` (heap entry ``(time, seq, handle)``).
* :meth:`Simulator.call_after` / :meth:`Simulator.call_at` are the fast
  lane for the vast majority of events that are never cancelled (task
  steps, timeouts, CPU slot completions, frame deliveries): the entry is
  a bare ``(time, seq, fn, args)`` tuple — no per-event object
  allocation, no ``cancelled`` test on dispatch.

Heap entries are ordered by their ``(time, seq)`` prefix; ``seq`` is
unique, so comparison never reaches the third element and the two entry
shapes coexist safely.  Cancelled handles are lazily deleted at pop
time, and the heap is compacted (rebuilt without dead entries) once
cancelled entries outnumber live ones — long fault-injection runs cancel
almost every rpciod retransmit timer, which would otherwise accumulate
without bound.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

from ..errors import SimulationError

__all__ = ["Simulator", "EventHandle"]

#: Compaction floor: don't bother rebuilding heaps smaller than this.
_COMPACT_MIN_CANCELLED = 8


class EventHandle:
    """A cancellable reference to a scheduled callback."""

    __slots__ = ("time", "fn", "args", "cancelled", "_sim")

    def __init__(
        self,
        time: int,
        fn: Callable[..., None],
        args: Tuple[Any, ...],
        sim: Optional["Simulator"] = None,
    ):
        self.time = time
        self.fn = fn
        self.args = args
        self.cancelled = False
        self._sim = sim

    def cancel(self) -> None:
        """Prevent the callback from running.  Idempotent."""
        if not self.cancelled:
            self.cancelled = True
            if self._sim is not None:
                self._sim._note_cancelled()


class Simulator:
    """Event loop with an integer-nanosecond virtual clock."""

    def __init__(self) -> None:
        self._now: int = 0
        self._seq: int = 0
        # Entries are (time, seq, EventHandle) or (time, seq, fn, args).
        self._queue: List[tuple] = []
        self._running = False
        self._cancelled = 0
        #: Total callbacks dispatched (cancelled entries excluded) — the
        #: numerator of the events-per-second benchmarks.
        self.events_processed: int = 0
        #: The task currently being stepped (set by :class:`~repro.sim.task.Task`).
        self.current_task: Optional[object] = None

    # -- clock ------------------------------------------------------------

    @property
    def now(self) -> int:
        """Current simulated time in nanoseconds."""
        return self._now

    # -- scheduling --------------------------------------------------------

    def schedule(self, delay: int, fn: Callable[..., None], *args: Any) -> EventHandle:
        """Run ``fn(*args)`` after ``delay`` nanoseconds of simulated time."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self._now + delay, fn, *args)

    def schedule_at(self, time: int, fn: Callable[..., None], *args: Any) -> EventHandle:
        """Run ``fn(*args)`` at absolute simulated ``time`` nanoseconds."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} (now={self._now})"
            )
        handle = EventHandle(time, fn, args, self)
        self._seq += 1
        heapq.heappush(self._queue, (time, self._seq, handle))
        return handle

    def call_after(self, delay: int, fn: Callable[..., None], *args: Any) -> None:
        """Fast lane: like :meth:`schedule` but not cancellable.

        No :class:`EventHandle` is allocated; use this for fire-and-forget
        callbacks on hot paths (it is what tasks and timeouts use).
        """
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        self._seq += 1
        heapq.heappush(self._queue, (self._now + delay, self._seq, fn, args))

    def call_at(self, time: int, fn: Callable[..., None], *args: Any) -> None:
        """Fast lane: like :meth:`schedule_at` but not cancellable."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} (now={self._now})"
            )
        self._seq += 1
        heapq.heappush(self._queue, (time, self._seq, fn, args))

    def alloc_seq(self) -> int:
        """Reserve the next tie-break sequence number without queueing.

        Pairs with :meth:`push_at`: a caller that defers heap insertion
        (e.g. a link keeping one live event per wire) reserves the seq
        at submission time, so pop order is identical to eager
        ``call_at`` — ``(time, seq)`` keys don't depend on *when* the
        entry physically enters the heap.
        """
        self._seq += 1
        return self._seq

    def push_at(self, time: int, seq: int, fn: Callable[..., None], *args: Any) -> None:
        """Insert a fast-lane entry under a seq from :meth:`alloc_seq`."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} (now={self._now})"
            )
        heapq.heappush(self._queue, (time, seq, fn, args))

    # -- cancellation bookkeeping -------------------------------------------

    def _note_cancelled(self) -> None:
        """Called by :meth:`EventHandle.cancel`; compacts when dead
        entries exceed half the heap."""
        self._cancelled += 1
        if (
            self._cancelled >= _COMPACT_MIN_CANCELLED
            and self._cancelled * 2 > len(self._queue)
        ):
            self._compact()

    def _compact(self) -> None:
        """Rebuild the heap without cancelled entries.

        Mutates ``self._queue`` in place (the run loops hold a local
        alias).  Pop order is unchanged: entry keys ``(time, seq)`` are
        unique, so any heap over the same live entries drains identically.
        """
        queue = self._queue
        queue[:] = [
            entry for entry in queue if len(entry) == 4 or not entry[2].cancelled
        ]
        heapq.heapify(queue)
        self._cancelled = 0

    # -- task support -------------------------------------------------------

    def spawn(self, generator, name: Optional[str] = None, daemon: bool = False):
        """Start a generator-based task.  See :class:`repro.sim.task.Task`."""
        from .task import Task

        return Task(self, generator, name=name, daemon=daemon)

    def timeout(self, delay: int):
        """A waitable that fires after ``delay`` nanoseconds."""
        from .task import Timeout

        return Timeout(self, delay)

    # -- running ------------------------------------------------------------

    def run(self, until: Optional[int] = None) -> int:
        """Process events until the queue drains or ``until`` is reached.

        Returns the simulated time at which processing stopped.  When
        ``until`` is given, the clock is advanced to exactly ``until``
        even if the last event fired earlier.
        """
        if self._running:
            raise SimulationError("simulator is already running (reentrant run)")
        self._running = True
        queue = self._queue
        heappop = heapq.heappop
        processed = 0
        try:
            if until is None:
                # Hoisted fast loop: no bound check per event.
                while queue:
                    entry = heappop(queue)
                    if len(entry) == 4:
                        self._now = entry[0]
                        processed += 1
                        entry[2](*entry[3])
                    else:
                        handle = entry[2]
                        if handle.cancelled:
                            self._cancelled -= 1
                            continue
                        self._now = entry[0]
                        processed += 1
                        handle.fn(*handle.args)
            else:
                while queue:
                    if queue[0][0] > until:
                        break
                    entry = heappop(queue)
                    if len(entry) == 4:
                        self._now = entry[0]
                        processed += 1
                        entry[2](*entry[3])
                    else:
                        handle = entry[2]
                        if handle.cancelled:
                            self._cancelled -= 1
                            continue
                        self._now = entry[0]
                        processed += 1
                        handle.fn(*handle.args)
                if self._now < until:
                    self._now = until
        finally:
            self._running = False
            self.events_processed += processed
        return self._now

    def run_window(self, end: int) -> int:
        """Process every event strictly before ``end``, then advance to ``end``.

        The conservative parallel-DES building block: a shard runs the
        half-open window ``[now, end)``, so events scheduled exactly at
        ``end`` (the next window's opening edge, or a message injected
        by another shard) stay queued.  Unlike :meth:`run`, the bound is
        exclusive.
        """
        if self._running:
            raise SimulationError("simulator is already running (reentrant run)")
        self._running = True
        queue = self._queue
        heappop = heapq.heappop
        processed = 0
        try:
            while queue and queue[0][0] < end:
                entry = heappop(queue)
                if len(entry) == 4:
                    self._now = entry[0]
                    processed += 1
                    entry[2](*entry[3])
                else:
                    handle = entry[2]
                    if handle.cancelled:
                        self._cancelled -= 1
                        continue
                    self._now = entry[0]
                    processed += 1
                    handle.fn(*handle.args)
            if self._now < end:
                self._now = end
        finally:
            self._running = False
            self.events_processed += processed
        return self._now

    def next_event_time(self) -> Optional[int]:
        """Timestamp of the earliest live event, or None when drained.

        Pops cancelled heads as a side effect (they are dead anyway);
        used by the shard synchroniser to skip empty lookahead windows.
        """
        queue = self._queue
        while queue:
            entry = queue[0]
            if len(entry) == 3 and entry[2].cancelled:
                heapq.heappop(queue)
                self._cancelled -= 1
                continue
            return entry[0]
        return None

    def run_for(self, duration: int) -> int:
        """Process events for ``duration`` nanoseconds of simulated time."""
        return self.run(until=self._now + duration)

    def run_until(self, predicate: Callable[[], bool], limit: Optional[int] = None) -> int:
        """Process events until ``predicate()`` is true or the queue drains.

        Needed because perpetual daemons (flush daemons, rpciod timers)
        keep the queue non-empty forever; callers typically wait for a
        foreground task: ``sim.run_until(lambda: task.done)``.
        An optional absolute-time ``limit`` guards against wedged runs.

        The limit check peeks before popping: the over-limit event stays
        queued, so a caller that catches the :class:`SimulationError` and
        resumes (e.g. after extending the limit) loses nothing.
        """
        if self._running:
            raise SimulationError("simulator is already running (reentrant run)")
        self._running = True
        queue = self._queue
        heappop = heapq.heappop
        processed = 0
        try:
            if limit is None:
                # Hoisted fast loop: no limit check per event.
                while not predicate() and queue:
                    entry = heappop(queue)
                    if len(entry) == 4:
                        self._now = entry[0]
                        processed += 1
                        entry[2](*entry[3])
                    else:
                        handle = entry[2]
                        if handle.cancelled:
                            self._cancelled -= 1
                            continue
                        self._now = entry[0]
                        processed += 1
                        handle.fn(*handle.args)
            else:
                while not predicate() and queue:
                    entry = queue[0]
                    if len(entry) == 3 and entry[2].cancelled:
                        heappop(queue)
                        self._cancelled -= 1
                        continue
                    if entry[0] > limit:
                        self._now = limit
                        raise SimulationError(
                            f"run_until hit the time limit at {limit} ns"
                        )
                    heappop(queue)
                    self._now = entry[0]
                    processed += 1
                    if len(entry) == 4:
                        entry[2](*entry[3])
                    else:
                        handle = entry[2]
                        handle.fn(*handle.args)
        finally:
            self._running = False
            self.events_processed += processed
        return self._now

    def pending_events(self) -> int:
        """Number of queued (possibly cancelled) events.  Mostly for tests."""
        return len(self._queue)
