"""Deterministic discrete-event simulation core.

The :class:`Simulator` owns an integer-nanosecond clock and a binary-heap
event queue.  Events scheduled for the same instant fire in the order
they were scheduled (a monotonically increasing sequence number breaks
ties), which makes every run bit-for-bit reproducible.

Simulated concurrency is expressed with generator-based tasks (see
:mod:`repro.sim.task`); the core only knows about timed callbacks.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, List, Optional, Tuple

from ..errors import SimulationError

__all__ = ["Simulator", "EventHandle"]


class EventHandle:
    """A cancellable reference to a scheduled callback."""

    __slots__ = ("time", "fn", "args", "cancelled")

    def __init__(self, time: int, fn: Callable[..., None], args: Tuple[Any, ...]):
        self.time = time
        self.fn = fn
        self.args = args
        self.cancelled = False

    def cancel(self) -> None:
        """Prevent the callback from running.  Idempotent."""
        self.cancelled = True


class Simulator:
    """Event loop with an integer-nanosecond virtual clock."""

    def __init__(self) -> None:
        self._now: int = 0
        self._seq: int = 0
        self._queue: List[Tuple[int, int, EventHandle]] = []
        self._running = False
        #: The task currently being stepped (set by :class:`~repro.sim.task.Task`).
        self.current_task: Optional[object] = None

    # -- clock ------------------------------------------------------------

    @property
    def now(self) -> int:
        """Current simulated time in nanoseconds."""
        return self._now

    # -- scheduling --------------------------------------------------------

    def schedule(self, delay: int, fn: Callable[..., None], *args: Any) -> EventHandle:
        """Run ``fn(*args)`` after ``delay`` nanoseconds of simulated time."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        return self.schedule_at(self._now + delay, fn, *args)

    def schedule_at(self, time: int, fn: Callable[..., None], *args: Any) -> EventHandle:
        """Run ``fn(*args)`` at absolute simulated ``time`` nanoseconds."""
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time} (now={self._now})"
            )
        handle = EventHandle(time, fn, args)
        self._seq += 1
        heapq.heappush(self._queue, (time, self._seq, handle))
        return handle

    # -- task support -------------------------------------------------------

    def spawn(self, generator, name: Optional[str] = None, daemon: bool = False):
        """Start a generator-based task.  See :class:`repro.sim.task.Task`."""
        from .task import Task

        return Task(self, generator, name=name, daemon=daemon)

    def timeout(self, delay: int):
        """A waitable that fires after ``delay`` nanoseconds."""
        from .task import Timeout

        return Timeout(self, delay)

    # -- running ------------------------------------------------------------

    def run(self, until: Optional[int] = None) -> int:
        """Process events until the queue drains or ``until`` is reached.

        Returns the simulated time at which processing stopped.  When
        ``until`` is given, the clock is advanced to exactly ``until``
        even if the last event fired earlier.
        """
        if self._running:
            raise SimulationError("simulator is already running (reentrant run)")
        self._running = True
        try:
            while self._queue:
                time, _seq, handle = self._queue[0]
                if until is not None and time > until:
                    break
                heapq.heappop(self._queue)
                if handle.cancelled:
                    continue
                self._now = time
                handle.fn(*handle.args)
            if until is not None and self._now < until:
                self._now = until
        finally:
            self._running = False
        return self._now

    def run_for(self, duration: int) -> int:
        """Process events for ``duration`` nanoseconds of simulated time."""
        return self.run(until=self._now + duration)

    def run_until(self, predicate: Callable[[], bool], limit: Optional[int] = None) -> int:
        """Process events until ``predicate()`` is true or the queue drains.

        Needed because perpetual daemons (flush daemons, rpciod timers)
        keep the queue non-empty forever; callers typically wait for a
        foreground task: ``sim.run_until(lambda: task.done)``.
        An optional absolute-time ``limit`` guards against wedged runs.
        """
        if self._running:
            raise SimulationError("simulator is already running (reentrant run)")
        self._running = True
        try:
            while not predicate() and self._queue:
                time, _seq, handle = heapq.heappop(self._queue)
                if handle.cancelled:
                    continue
                if limit is not None and time > limit:
                    self._now = limit
                    raise SimulationError(
                        f"run_until hit the time limit at {limit} ns"
                    )
                self._now = time
                handle.fn(*handle.args)
        finally:
            self._running = False
        return self._now

    def pending_events(self) -> int:
        """Number of queued (possibly cancelled) events.  Mostly for tests."""
        return len(self._queue)
