"""Units and unit conversions used throughout the simulation.

Simulated time is kept as an integer number of nanoseconds.  Integer time
makes the event queue deterministic (no floating-point tie ambiguity) and
survives arbitrarily long runs without precision loss.

Data sizes are plain integers (bytes).  Rates are floats in bytes per
second.  The paper reports throughput in "MBps"; its figure axes are in
KB/sec with decimal prefixes, so we use decimal megabytes (1 MB = 10**6
bytes) when formatting throughput, matching the paper's convention.
"""

from __future__ import annotations

# --- time ----------------------------------------------------------------

NS_PER_US = 1_000
NS_PER_MS = 1_000_000
NS_PER_SEC = 1_000_000_000


def us(value: float) -> int:
    """Convert microseconds to integer nanoseconds."""
    return int(round(value * NS_PER_US))


def ms(value: float) -> int:
    """Convert milliseconds to integer nanoseconds."""
    return int(round(value * NS_PER_MS))


def seconds(value: float) -> int:
    """Convert seconds to integer nanoseconds."""
    return int(round(value * NS_PER_SEC))


def to_us(ns: int) -> float:
    """Convert integer nanoseconds to float microseconds."""
    return ns / NS_PER_US


def to_ms(ns: int) -> float:
    """Convert integer nanoseconds to float milliseconds."""
    return ns / NS_PER_MS


def to_seconds(ns: int) -> float:
    """Convert integer nanoseconds to float seconds."""
    return ns / NS_PER_SEC


# --- data sizes ----------------------------------------------------------

KIB = 1024
MIB = 1024 * 1024
KB = 1000
MB = 1000 * 1000

#: Page size of the simulated client (Linux/x86).
PAGE_SIZE = 4096


def kib(value: float) -> int:
    """Convert binary kilobytes to bytes."""
    return int(round(value * KIB))


def mib(value: float) -> int:
    """Convert binary megabytes to bytes."""
    return int(round(value * MIB))


def pages(nbytes: int) -> int:
    """Number of pages covering ``nbytes`` (rounded up)."""
    return -(-nbytes // PAGE_SIZE)


# --- rates ---------------------------------------------------------------


def mbps(value: float) -> float:
    """Convert decimal megabytes/second to bytes/second."""
    return value * MB


def gbit(value: float) -> float:
    """Convert gigabits/second to bytes/second."""
    return value * 1e9 / 8


def mbit(value: float) -> float:
    """Convert megabits/second to bytes/second."""
    return value * 1e6 / 8


def to_mbps(bytes_per_sec: float) -> float:
    """Convert bytes/second to decimal megabytes/second."""
    return bytes_per_sec / MB


def transfer_time(nbytes: int, bytes_per_sec: float) -> int:
    """Nanoseconds needed to move ``nbytes`` at ``bytes_per_sec``.

    Always at least 1 ns for a non-empty transfer so that events keep
    strictly advancing time.
    """
    if nbytes <= 0:
        return 0
    if bytes_per_sec <= 0:
        raise ValueError("bytes_per_sec must be positive")
    return max(1, int(round(nbytes * NS_PER_SEC / bytes_per_sec)))


def throughput(nbytes: int, elapsed_ns: int) -> float:
    """Bytes per second achieved moving ``nbytes`` in ``elapsed_ns``."""
    if elapsed_ns <= 0:
        return 0.0
    return nbytes * NS_PER_SEC / elapsed_ns
