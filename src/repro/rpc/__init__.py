"""SunRPC over UDP: client transport, rpciod, and server dispatch."""

from .messages import (
    RPC_CALL_HEADER,
    RPC_REPLY_HEADER,
    RpcCall,
    RpcError,
    RpcReply,
)
from .server import RpcServer
from .xprt import PendingRequest, TransportStats, UdpTransport

__all__ = [
    "RpcCall",
    "RpcReply",
    "RpcError",
    "RPC_CALL_HEADER",
    "RPC_REPLY_HEADER",
    "UdpTransport",
    "PendingRequest",
    "TransportStats",
    "RpcServer",
]
