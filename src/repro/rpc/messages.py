"""SunRPC message records.

Only the fields that drive timing and matching are modelled: xids for
reply matching, wire sizes for link occupancy and fragmentation, and an
opaque ``args``/``result`` payload interpreted by the bound program.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

__all__ = ["RpcCall", "RpcReply", "RPC_CALL_HEADER", "RPC_REPLY_HEADER"]

#: Bytes of RPC+credential header on a call, on top of procedure args.
RPC_CALL_HEADER = 72
#: Bytes of RPC header on a reply, on top of procedure results.
RPC_REPLY_HEADER = 48


@dataclass(slots=True)
class RpcCall:
    """One RPC call as it crosses the wire."""

    xid: int
    prog: str
    proc: str
    args: Any
    #: UDP payload bytes (header + encoded arguments + inline data).
    size: int
    #: Causal span id (repro.obs); 0 when tracing is off.  A pure
    #: annotation carried across the wire so server-side work can be
    #: parented under the syscall that caused it.
    span_id: int = 0

    def __post_init__(self) -> None:
        if self.size < RPC_CALL_HEADER:
            self.size = RPC_CALL_HEADER


@dataclass(slots=True)
class RpcReply:
    """The matching reply."""

    xid: int
    result: Any
    size: int = field(default=RPC_REPLY_HEADER)
    #: Causal span id echoed from the call (repro.obs annotation).
    span_id: int = 0

    def __post_init__(self) -> None:
        if self.size < RPC_REPLY_HEADER:
            self.size = RPC_REPLY_HEADER

    @property
    def is_error(self) -> bool:
        return isinstance(self.result, RpcError)


@dataclass(slots=True)
class RpcError:
    """An error result (accept-stat != SUCCESS / NFS error status).

    ``code`` carries the machine-readable status the transport acts on:
    ``"JUKEBOX"`` (retry after a delay), ``"ETIMEDOUT"`` (synthesised on
    a soft-mount major timeout), or ``""`` for generic failures.
    """

    message: str
    code: str = ""
