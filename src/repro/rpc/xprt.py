"""Client-side SunRPC transport over UDP.

Models the Linux RPC transport (``xprt.c``) pieces that shape the
paper's results:

* a **slot table** bounding concurrent requests (16 in Linux),
* a **Van Jacobson congestion window** grown on timely replies and
  halved on retransmits,
* a **backlog queue**: when the window is closed, new requests queue and
  the rpciod daemon sends them as replies free slots.

The division of labour is the crux of the slow-server paradox (§3.5):
when the window is open the *submitting thread* pays the ~50 µs
``sock_sendmsg`` cost inline; when it is closed the submitter merely
queues (cheap) and **rpciod** pays the cost later — while holding the
Big Kernel Lock, under the stock policy, which is what the writer then
contends with.  A fast server keeps slots turning over rapidly, keeping
rpciod constantly busy sending and completing; a slow server leaves the
window full and rpciod mostly asleep, so the writer runs unimpeded.

Failure semantics (``docs/robustness.md``): minor timeouts retransmit
with exponential backoff (or an adaptive srtt/rttvar interval, see
:class:`RttEstimator`); after ``retrans`` retransmissions the request
hits a **major timeout**.  A *hard* mount restarts the backoff cycle
and retries forever; a *soft* mount fails the request with ETIMEDOUT,
which surfaces as EIO to the caller.  ``NFS3ERR_JUKEBOX`` replies are
re-sent after a fixed delay instead of completing.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Generator, Optional

from ..errors import EioError, ProtocolError
from ..kernel.bkl import LockPolicy, NoLockPolicy
from ..net.host import Host
from ..net.udp import UdpSocket
from ..obs.core import DISABLED
from ..sim import PRIO_KERNEL, Event
from .messages import RpcCall, RpcError, RpcReply

__all__ = ["PendingRequest", "UdpTransport", "TransportStats", "RttEstimator"]


class TransportStats:
    """Counters the experiments and tests read."""

    __slots__ = (
        "submitted",
        "sent_inline",
        "sent_by_rpciod",
        "retransmits",
        "completed",
        "duplicate_replies",
        "backlog_peak",
        "major_timeouts",
        "soft_failures",
        "jukebox_retries",
    )

    def __init__(self) -> None:
        self.submitted = 0
        self.sent_inline = 0
        self.sent_by_rpciod = 0
        self.retransmits = 0
        self.completed = 0
        self.duplicate_replies = 0
        self.backlog_peak = 0
        #: retrans cap exhausted (hard mounts restart the backoff cycle
        #: here; soft mounts additionally fail the request).
        self.major_timeouts = 0
        #: Requests failed with ETIMEDOUT on a soft mount.
        self.soft_failures = 0
        #: Calls re-sent after an NFS3ERR_JUKEBOX reply.
        self.jukebox_retries = 0

    @property
    def inline_fraction(self) -> float:
        """Fraction of first sends paid by the submitting thread."""
        sent = self.sent_inline + self.sent_by_rpciod
        if sent == 0:
            return 0.0
        return self.sent_inline / sent


class RttEstimator:
    """Van Jacobson SRTT/RTTVAR per op class (``net/sunrpc/timer.c``).

    Linux keeps one estimator per timer class (reads, writes, metadata)
    and derives the minor retransmit timeout as ``srtt + 4·rttvar``,
    clamped to sane bounds.  Karn's rule applies: only replies to
    never-retransmitted calls update the estimate.
    """

    __slots__ = ("initial_ns", "min_ns", "max_ns", "srtt_ns", "rttvar_ns", "samples")

    def __init__(
        self,
        initial_ns: int,
        min_ns: int = 10_000_000,
        max_ns: int = 60_000_000_000,
    ):
        self.initial_ns = initial_ns
        self.min_ns = min_ns
        self.max_ns = max_ns
        self.srtt_ns: Optional[int] = None
        self.rttvar_ns = 0
        self.samples = 0

    def observe(self, rtt_ns: int) -> None:
        """Fold one round-trip sample into srtt/rttvar (gains 1/8, 1/4)."""
        self.samples += 1
        if self.srtt_ns is None:
            self.srtt_ns = rtt_ns
            self.rttvar_ns = rtt_ns // 2
            return
        err = rtt_ns - self.srtt_ns
        self.srtt_ns += err // 8
        self.rttvar_ns += (abs(err) - self.rttvar_ns) // 4

    def timeout_ns(self) -> int:
        """Current retransmit timeout: srtt + 4·rttvar, clamped."""
        if self.srtt_ns is None:
            return self.initial_ns
        return max(self.min_ns, min(self.max_ns, self.srtt_ns + 4 * self.rttvar_ns))


#: Histogram bounds for round-trip times, in microseconds.
RTT_BUCKETS_US = (100, 250, 500, 1_000, 2_500, 5_000, 10_000, 25_000, 100_000)

#: Op-class map for RTT estimation (Linux ``rpc_proc_info.p_timer``).
_TIMER_CLASS = {
    "READ": "read",
    "WRITE": "write",
    "COMMIT": "write",
}


class PendingRequest:
    """One outstanding RPC."""

    __slots__ = (
        "call",
        "completion",
        "on_complete",
        "on_error",
        "timer",
        "timeo_ns",
        "retries",
        "submitted_at",
        "first_sent_at",
        "sent_by",
        "timer_class",
    )

    def __init__(self, sim, call: RpcCall, on_complete, timeo_ns: int, on_error=None):
        self.call = call
        self.completion = Event(sim)
        self.on_complete = on_complete
        #: Completion callback for error replies (including the
        #: synthesised soft-mount ETIMEDOUT); success replies never
        #: reach it.  Sync waiters instead inspect ``reply.is_error``.
        self.on_error = on_error
        self.timer = None
        self.timeo_ns = timeo_ns
        self.retries = 0
        self.submitted_at = sim.now
        self.first_sent_at: Optional[int] = None
        self.sent_by: Optional[str] = None
        self.timer_class = _TIMER_CLASS.get(call.proc, "meta")


class UdpTransport:
    """RPC client transport bound to one server address."""

    #: Initial congestion window, in requests.
    INITIAL_CWND = 2.0
    #: Retransmit backoff ceiling.
    MAX_TIMEO_NS = 60_000_000_000

    def __init__(
        self,
        host: Host,
        sock: UdpSocket,
        server: str,
        server_port: int,
        slots: int = 16,
        timeo_ns: int = 700_000_000,
        lock_policy: Optional[LockPolicy] = None,
        name: str = "xprt",
        retrans: int = 5,
        soft: bool = False,
        adaptive_timeo: bool = False,
        jukebox_delay_ns: int = 5_000_000_000,
    ):
        if slots < 1:
            raise ProtocolError(f"{name}: slot table must hold >= 1 request")
        if retrans < 1:
            raise ProtocolError(f"{name}: retrans must be >= 1")
        self.host = host
        self.sock = sock
        self.server = server
        self.server_port = server_port
        self.slots = slots
        self.timeo_ns = timeo_ns
        self.retrans = retrans
        self.soft = soft
        self.adaptive_timeo = adaptive_timeo
        self.jukebox_delay_ns = jukebox_delay_ns
        self.lock_policy = lock_policy or NoLockPolicy()
        self.name = name
        self.cwnd = min(self.INITIAL_CWND, float(slots))
        self.in_flight: Dict[int, PendingRequest] = {}
        self.backlog: Deque[PendingRequest] = deque()
        self._retrans_queue: Deque[PendingRequest] = deque()
        #: Soft-mount major-timeout casualties awaiting error completion.
        self._failed_queue: Deque[PendingRequest] = deque()
        self._xid = 0
        self.stats = TransportStats()
        #: Per-op-class RTT estimators (used when ``adaptive_timeo``).
        self.rtt = {
            cls: RttEstimator(timeo_ns) for cls in ("read", "write", "meta")
        }
        #: Fault injection: a smaller temporary slot-table bound
        #: (slot-table starvation); ``None`` means no override.
        self.slot_override: Optional[int] = None
        #: Wire-send timestamps (bounded), for on-the-wire smoothness
        #: analysis — §3.3: "the latency spikes do not appear in write
        #: requests on the wire".
        self.send_times: Deque[int] = deque(maxlen=200_000)
        self._sim = host.sim
        self._kick: Optional[Event] = None
        self.obs = DISABLED
        sock.on_deliver = self._nudge_rpciod
        self.rpciod = self._sim.spawn(
            self._rpciod_loop(), name=f"{name}-rpciod", daemon=True
        )

    # -- public API -------------------------------------------------------------

    def next_xid(self) -> int:
        self._xid += 1
        return self._xid

    def submit(
        self,
        call: RpcCall,
        on_complete: Optional[Callable[[RpcReply], Generator]] = None,
        on_error: Optional[Callable[[RpcReply], Generator]] = None,
    ):
        """Generator (runs in the submitter's context): start an RPC.

        Returns the :class:`PendingRequest`; await ``request.completion``
        for the reply.  If the congestion window is open the wire send
        happens here, in the caller's context, at the caller's cost;
        otherwise the request joins the backlog for rpciod.
        """
        req = PendingRequest(
            self._sim, call, on_complete, self._initial_timeo(call.proc), on_error
        )
        self.stats.submitted += 1
        obs = self.obs
        if obs.enabled:
            obs.count(f"rpc/submitted/{call.proc}")
            if call.span_id == 0:
                # Ops the NFS layer did not annotate (LOOKUP, CREATE,
                # READ, ...) still get a span under the running syscall.
                call.span_id = obs.span_begin(
                    "rpc", call.proc, parent=obs.task_span(), xid=call.xid
                )
        if not self.backlog and self._window_open():
            self.in_flight[call.xid] = req
            req.sent_by = "inline"
            self.stats.sent_inline += 1
            yield from self._send(req, "rpc_send_inline")
        else:
            self.backlog.append(req)
            if len(self.backlog) > self.stats.backlog_peak:
                self.stats.backlog_peak = len(self.backlog)
            if obs.enabled:
                obs.count("rpc/backlogged")
                obs.sample("rpc", "backlog", len(self.backlog))
            self._nudge_rpciod()
        return req

    def call_and_wait(self, call: RpcCall, on_complete=None):
        """Generator: submit and block until the reply arrives.

        Raises :class:`EioError` when a soft mount gave up on the call
        (ETIMEDOUT), :class:`ProtocolError` when the server answered
        with any other error status.
        """
        req = yield from self.submit(call, on_complete)
        reply = yield req.completion
        if reply.is_error:
            if getattr(reply.result, "code", "") == "ETIMEDOUT":
                raise EioError(
                    f"{self.name}: {call.proc} to {self.server} timed out "
                    f"(soft mount, retrans={self.retrans})"
                )
            raise ProtocolError(
                f"{self.name}: {call.proc} failed on {self.server}: "
                f"{reply.result.message}"
            )
        return reply

    @property
    def outstanding(self) -> int:
        """Requests submitted but not yet completed."""
        return len(self.in_flight) + len(self.backlog) + len(self._failed_queue)

    def max_send_gap_ns(self, up_to: Optional[int] = None) -> int:
        """Largest quiet interval between consecutive wire sends."""
        times = [t for t in self.send_times if up_to is None or t <= up_to]
        if len(times) < 2:
            return 0
        return max(b - a for a, b in zip(times, times[1:]))

    # -- window -------------------------------------------------------------------

    def effective_slots(self) -> int:
        """Slot-table bound, honouring any starvation override."""
        if self.slot_override is not None:
            return max(1, min(self.slots, self.slot_override))
        return self.slots

    def _window_open(self) -> bool:
        return len(self.in_flight) < min(
            self.effective_slots(), max(1, int(self.cwnd))
        )

    def _on_reply_cwnd(self) -> None:
        if self.cwnd < self.slots:
            self.cwnd = min(float(self.slots), self.cwnd + 1.0 / self.cwnd)

    def _on_timeout_cwnd(self) -> None:
        self.cwnd = max(1.0, self.cwnd / 2.0)

    # -- timeouts ------------------------------------------------------------------

    def _initial_timeo(self, proc: str) -> int:
        if self.adaptive_timeo:
            return self.rtt[_TIMER_CLASS.get(proc, "meta")].timeout_ns()
        return self.timeo_ns

    # -- wire -----------------------------------------------------------------------

    def _send(self, req: PendingRequest, label: str):
        """Generator: XDR-encode and push one call onto the wire."""
        obs = self.obs
        send_span = 0
        if obs.enabled:
            send_span = obs.span_begin(
                "rpc", label, parent=req.call.span_id, xid=req.call.xid
            )
        yield from self.host.cpus.execute(
            self.host.costs.rpc_build, label="rpc_build", priority=PRIO_KERNEL
        )

        def wire_body():
            cost = self.host.udp.send_cost(req.call.size)
            yield from self.host.cpus.execute(
                cost, label="sock_sendmsg", priority=PRIO_KERNEL
            )
            self.sock.sendto(self.server, self.server_port, req.call, req.call.size)

        yield from self.lock_policy.wire_send(label, wire_body())
        if obs.enabled:
            obs.span_end(send_span)
            obs.sample("rpc", "cwnd", self.cwnd)
            obs.series_gauge("rpc/slots_in_flight", len(self.in_flight))
        self.send_times.append(self._sim.now)
        if req.first_sent_at is None:
            req.first_sent_at = self._sim.now
        if req.timer is not None:
            req.timer.cancel()
        req.timer = self._sim.schedule(req.timeo_ns, self._on_timeout, req)

    def _on_timeout(self, req: PendingRequest) -> None:
        if req.call.xid not in self.in_flight:
            return
        req.retries += 1
        obs = self.obs
        if obs.enabled:
            obs.span_point(
                "rpc", "timeout", parent=req.call.span_id, retries=req.retries
            )
        if req.retries > self.retrans:
            # Major timeout: the mount's retrans budget is spent.
            self.stats.major_timeouts += 1
            if obs.enabled:
                obs.count(f"rpc/major_timeouts/{req.call.proc}")
            if self.soft:
                # Soft semantics: give up and fail the request with
                # ETIMEDOUT (rpciod completes it, under the lock policy).
                del self.in_flight[req.call.xid]
                req.timer = None
                self.stats.soft_failures += 1
                if obs.enabled:
                    obs.count(f"rpc/soft_failures/{req.call.proc}")
                self._failed_queue.append(req)
                self._nudge_rpciod()
                return
            # Hard semantics: "server not responding, still trying" —
            # restart the backoff cycle and retry forever.
            req.retries = 0
            req.timeo_ns = self._initial_timeo(req.call.proc)
        else:
            req.timeo_ns = min(req.timeo_ns * 2, self.MAX_TIMEO_NS)
        self.stats.retransmits += 1
        if obs.enabled:
            obs.count(f"rpc/retransmits/{req.call.proc}")
            obs.series_count("rpc/retransmits")
        self._on_timeout_cwnd()
        self._retrans_queue.append(req)
        self._nudge_rpciod()

    def _on_jukebox_delay(self, req: PendingRequest) -> None:
        if req.call.xid not in self.in_flight:
            return
        req.timer = None
        self._retrans_queue.append(req)
        self._nudge_rpciod()

    # -- rpciod ----------------------------------------------------------------------

    def _nudge_rpciod(self) -> None:
        if self._kick is not None and not self._kick.fired:
            self._kick.trigger()

    def _work_available(self) -> bool:
        if self._retrans_queue or self._failed_queue or self.sock.pending:
            return True
        return bool(self.backlog) and self._window_open()

    def _rpciod_loop(self):
        while True:
            if not self._work_available():
                self._kick = Event(self._sim)
                if self._work_available():  # arrived while we decided to sleep
                    self._kick = None
                    continue
                yield self._kick
                self._kick = None
                continue
            # A work burst: the daemon holds the kernel lock throughout
            # (per policy), exactly the behaviour §3.5 blames for SMP
            # contention.
            yield from self.lock_policy.daemon_acquire("rpciod")
            try:
                while self._work_available():
                    yield from self._work_one()
            finally:
                self.lock_policy.daemon_release()

    def _work_one(self):
        if self._failed_queue:
            req = self._failed_queue.popleft()
            yield from self._complete_failure(req)
            return
        if self._retrans_queue:
            req = self._retrans_queue.popleft()
            if req.call.xid in self.in_flight:
                yield from self._send(req, "rpc_send_retrans")
            return
        dgram = self.sock.try_recv()
        if dgram is not None:
            yield from self._handle_reply(dgram.payload)
            return
        if self.backlog and self._window_open():
            req = self.backlog.popleft()
            self.in_flight[req.call.xid] = req
            req.sent_by = "rpciod"
            self.stats.sent_by_rpciod += 1
            if self.obs.enabled:
                self.obs.sample("rpc", "backlog", len(self.backlog))
            yield from self._send(req, "rpc_send_rpciod")

    def _handle_reply(self, reply: RpcReply):
        obs = self.obs
        req = self.in_flight.get(reply.xid)
        if req is None:
            self.stats.duplicate_replies += 1
            if obs.enabled:
                obs.count("rpc/duplicate_replies")
            yield from self.host.cpus.execute(
                self.host.costs.reply_processing,
                label="rpc_reply_dup",
                priority=PRIO_KERNEL,
            )
            return
        if reply.is_error and getattr(reply.result, "code", "") == "JUKEBOX":
            # NFS3ERR_JUKEBOX: the server asked for patience.  Hold the
            # slot and re-send the same xid after the jukebox delay.
            self.stats.jukebox_retries += 1
            if obs.enabled:
                obs.count("rpc/jukebox_retries")
            if req.timer is not None:
                req.timer.cancel()
            req.timer = self._sim.schedule(
                self.jukebox_delay_ns, self._on_jukebox_delay, req
            )
            return
        del self.in_flight[reply.xid]
        if req.timer is not None:
            req.timer.cancel()
            req.timer = None
        if obs.enabled:
            obs.series_gauge("rpc/slots_in_flight", len(self.in_flight))
        self._on_reply_cwnd()
        if (
            self.adaptive_timeo
            and req.retries == 0
            and req.first_sent_at is not None
        ):
            # Karn's rule: retransmitted calls yield ambiguous samples.
            self.rtt[req.timer_class].observe(self._sim.now - req.first_sent_at)
        if obs.enabled:
            if req.retries == 0 and req.first_sent_at is not None:
                obs.observe(
                    f"rpc/rtt_us/{req.timer_class}",
                    (self._sim.now - req.first_sent_at) // 1_000,
                    RTT_BUCKETS_US,
                )
            if self.adaptive_timeo:
                srtt = self.rtt[req.timer_class].srtt_ns
                if srtt is not None:
                    obs.sample("rpc", f"srtt_us_{req.timer_class}", srtt // 1_000)

        reply_span = 0
        if obs.enabled:
            reply_span = obs.span_begin(
                "rpc", "rpc_reply", parent=req.call.span_id, xid=reply.xid
            )

        def process():
            yield from self.host.cpus.execute(
                self.host.costs.reply_processing,
                label="rpc_reply_processing",
                priority=PRIO_KERNEL,
            )
            if reply.is_error:
                if req.on_error is not None:
                    yield from req.on_error(reply)
            elif req.on_complete is not None:
                yield from req.on_complete(reply)

        yield from self.lock_policy.critical("rpciod", process())
        self.stats.completed += 1
        if obs.enabled:
            obs.span_end(reply_span)
            obs.span_end(req.call.span_id)
        req.completion.trigger(reply)

    def _complete_failure(self, req: PendingRequest):
        """Generator: deliver a synthesised ETIMEDOUT reply (soft mount)."""
        reply = RpcReply(
            xid=req.call.xid,
            result=RpcError(
                f"{self.name}: {req.call.proc} major timeout "
                f"(soft mount, retrans={self.retrans})",
                code="ETIMEDOUT",
            ),
            span_id=req.call.span_id,
        )

        def process():
            yield from self.host.cpus.execute(
                self.host.costs.reply_processing,
                label="rpc_soft_timeout",
                priority=PRIO_KERNEL,
            )
            if req.on_error is not None:
                yield from req.on_error(reply)

        yield from self.lock_policy.critical("rpciod", process())
        self.stats.completed += 1
        if self.obs.enabled:
            self.obs.span_end(req.call.span_id, error="ETIMEDOUT")
        req.completion.trigger(reply)
