"""Client-side SunRPC transport over UDP.

Models the Linux RPC transport (``xprt.c``) pieces that shape the
paper's results:

* a **slot table** bounding concurrent requests (16 in Linux),
* a **Van Jacobson congestion window** grown on timely replies and
  halved on retransmits,
* a **backlog queue**: when the window is closed, new requests queue and
  the rpciod daemon sends them as replies free slots.

The division of labour is the crux of the slow-server paradox (§3.5):
when the window is open the *submitting thread* pays the ~50 µs
``sock_sendmsg`` cost inline; when it is closed the submitter merely
queues (cheap) and **rpciod** pays the cost later — while holding the
Big Kernel Lock, under the stock policy, which is what the writer then
contends with.  A fast server keeps slots turning over rapidly, keeping
rpciod constantly busy sending and completing; a slow server leaves the
window full and rpciod mostly asleep, so the writer runs unimpeded.
"""

from __future__ import annotations

from collections import deque
from typing import Callable, Deque, Dict, Generator, Optional

from ..errors import ProtocolError
from ..kernel.bkl import LockPolicy, NoLockPolicy
from ..net.host import Host
from ..net.udp import UdpSocket
from ..sim import PRIO_KERNEL, Event
from .messages import RpcCall, RpcReply

__all__ = ["PendingRequest", "UdpTransport", "TransportStats"]


class TransportStats:
    """Counters the experiments and tests read."""

    __slots__ = (
        "submitted",
        "sent_inline",
        "sent_by_rpciod",
        "retransmits",
        "completed",
        "duplicate_replies",
        "backlog_peak",
    )

    def __init__(self) -> None:
        self.submitted = 0
        self.sent_inline = 0
        self.sent_by_rpciod = 0
        self.retransmits = 0
        self.completed = 0
        self.duplicate_replies = 0
        self.backlog_peak = 0

    @property
    def inline_fraction(self) -> float:
        """Fraction of first sends paid by the submitting thread."""
        sent = self.sent_inline + self.sent_by_rpciod
        if sent == 0:
            return 0.0
        return self.sent_inline / sent


class PendingRequest:
    """One outstanding RPC."""

    __slots__ = (
        "call",
        "completion",
        "on_complete",
        "timer",
        "timeo_ns",
        "retries",
        "submitted_at",
        "first_sent_at",
        "sent_by",
    )

    def __init__(self, sim, call: RpcCall, on_complete, timeo_ns: int):
        self.call = call
        self.completion = Event(sim)
        self.on_complete = on_complete
        self.timer = None
        self.timeo_ns = timeo_ns
        self.retries = 0
        self.submitted_at = sim.now
        self.first_sent_at: Optional[int] = None
        self.sent_by: Optional[str] = None


class UdpTransport:
    """RPC client transport bound to one server address."""

    #: Initial congestion window, in requests.
    INITIAL_CWND = 2.0
    #: Retransmit backoff ceiling.
    MAX_TIMEO_NS = 60_000_000_000

    def __init__(
        self,
        host: Host,
        sock: UdpSocket,
        server: str,
        server_port: int,
        slots: int = 16,
        timeo_ns: int = 700_000_000,
        lock_policy: Optional[LockPolicy] = None,
        name: str = "xprt",
    ):
        if slots < 1:
            raise ProtocolError(f"{name}: slot table must hold >= 1 request")
        self.host = host
        self.sock = sock
        self.server = server
        self.server_port = server_port
        self.slots = slots
        self.timeo_ns = timeo_ns
        self.lock_policy = lock_policy or NoLockPolicy()
        self.name = name
        self.cwnd = min(self.INITIAL_CWND, float(slots))
        self.in_flight: Dict[int, PendingRequest] = {}
        self.backlog: Deque[PendingRequest] = deque()
        self._retrans_queue: Deque[PendingRequest] = deque()
        self._xid = 0
        self.stats = TransportStats()
        #: Wire-send timestamps (bounded), for on-the-wire smoothness
        #: analysis — §3.3: "the latency spikes do not appear in write
        #: requests on the wire".
        self.send_times: Deque[int] = deque(maxlen=200_000)
        self._sim = host.sim
        self._kick: Optional[Event] = None
        sock.on_deliver = self._nudge_rpciod
        self.rpciod = self._sim.spawn(
            self._rpciod_loop(), name=f"{name}-rpciod", daemon=True
        )

    # -- public API -------------------------------------------------------------

    def next_xid(self) -> int:
        self._xid += 1
        return self._xid

    def submit(
        self,
        call: RpcCall,
        on_complete: Optional[Callable[[RpcReply], Generator]] = None,
    ):
        """Generator (runs in the submitter's context): start an RPC.

        Returns the :class:`PendingRequest`; await ``request.completion``
        for the reply.  If the congestion window is open the wire send
        happens here, in the caller's context, at the caller's cost;
        otherwise the request joins the backlog for rpciod.
        """
        req = PendingRequest(self._sim, call, on_complete, self.timeo_ns)
        self.stats.submitted += 1
        if not self.backlog and self._window_open():
            self.in_flight[call.xid] = req
            req.sent_by = "inline"
            self.stats.sent_inline += 1
            yield from self._send(req, "rpc_send_inline")
        else:
            self.backlog.append(req)
            if len(self.backlog) > self.stats.backlog_peak:
                self.stats.backlog_peak = len(self.backlog)
            self._nudge_rpciod()
        return req

    def call_and_wait(self, call: RpcCall, on_complete=None):
        """Generator: submit and block until the reply arrives.

        Raises :class:`ProtocolError` when the server answered with an
        error status.
        """
        req = yield from self.submit(call, on_complete)
        reply = yield req.completion
        if reply.is_error:
            raise ProtocolError(
                f"{self.name}: {call.proc} failed on {self.server}: "
                f"{reply.result.message}"
            )
        return reply

    @property
    def outstanding(self) -> int:
        """Requests submitted but not yet completed."""
        return len(self.in_flight) + len(self.backlog)

    def max_send_gap_ns(self, up_to: Optional[int] = None) -> int:
        """Largest quiet interval between consecutive wire sends."""
        times = [t for t in self.send_times if up_to is None or t <= up_to]
        if len(times) < 2:
            return 0
        return max(b - a for a, b in zip(times, times[1:]))

    # -- window -------------------------------------------------------------------

    def _window_open(self) -> bool:
        return len(self.in_flight) < min(self.slots, max(1, int(self.cwnd)))

    def _on_reply_cwnd(self) -> None:
        if self.cwnd < self.slots:
            self.cwnd = min(float(self.slots), self.cwnd + 1.0 / self.cwnd)

    def _on_timeout_cwnd(self) -> None:
        self.cwnd = max(1.0, self.cwnd / 2.0)

    # -- wire -----------------------------------------------------------------------

    def _send(self, req: PendingRequest, label: str):
        """Generator: XDR-encode and push one call onto the wire."""
        yield from self.host.cpus.execute(
            self.host.costs.rpc_build, label="rpc_build", priority=PRIO_KERNEL
        )

        def wire_body():
            cost = self.host.udp.send_cost(req.call.size)
            yield from self.host.cpus.execute(
                cost, label="sock_sendmsg", priority=PRIO_KERNEL
            )
            self.sock.sendto(self.server, self.server_port, req.call, req.call.size)

        yield from self.lock_policy.wire_send(label, wire_body())
        self.send_times.append(self._sim.now)
        if req.first_sent_at is None:
            req.first_sent_at = self._sim.now
        if req.timer is not None:
            req.timer.cancel()
        req.timer = self._sim.schedule(req.timeo_ns, self._on_timeout, req)

    def _on_timeout(self, req: PendingRequest) -> None:
        if req.call.xid not in self.in_flight:
            return
        req.retries += 1
        req.timeo_ns = min(req.timeo_ns * 2, self.MAX_TIMEO_NS)
        self.stats.retransmits += 1
        self._on_timeout_cwnd()
        self._retrans_queue.append(req)
        self._nudge_rpciod()

    # -- rpciod ----------------------------------------------------------------------

    def _nudge_rpciod(self) -> None:
        if self._kick is not None and not self._kick.fired:
            self._kick.trigger()

    def _work_available(self) -> bool:
        if self._retrans_queue or self.sock.pending:
            return True
        return bool(self.backlog) and self._window_open()

    def _rpciod_loop(self):
        while True:
            if not self._work_available():
                self._kick = Event(self._sim)
                if self._work_available():  # arrived while we decided to sleep
                    self._kick = None
                    continue
                yield self._kick
                self._kick = None
                continue
            # A work burst: the daemon holds the kernel lock throughout
            # (per policy), exactly the behaviour §3.5 blames for SMP
            # contention.
            yield from self.lock_policy.daemon_acquire("rpciod")
            try:
                while self._work_available():
                    yield from self._work_one()
            finally:
                self.lock_policy.daemon_release()

    def _work_one(self):
        if self._retrans_queue:
            req = self._retrans_queue.popleft()
            if req.call.xid in self.in_flight:
                yield from self._send(req, "rpc_send_retrans")
            return
        dgram = self.sock.try_recv()
        if dgram is not None:
            yield from self._handle_reply(dgram.payload)
            return
        if self.backlog and self._window_open():
            req = self.backlog.popleft()
            self.in_flight[req.call.xid] = req
            req.sent_by = "rpciod"
            self.stats.sent_by_rpciod += 1
            yield from self._send(req, "rpc_send_rpciod")

    def _handle_reply(self, reply: RpcReply):
        req = self.in_flight.pop(reply.xid, None)
        if req is None:
            self.stats.duplicate_replies += 1
            return
            yield  # pragma: no cover - generator marker
        if req.timer is not None:
            req.timer.cancel()
            req.timer = None
        self._on_reply_cwnd()

        def process():
            yield from self.host.cpus.execute(
                self.host.costs.reply_processing,
                label="rpc_reply_processing",
                priority=PRIO_KERNEL,
            )
            # Error replies bypass the completion callback: the waiter
            # inspects reply.is_error (sync callers raise).
            if req.on_complete is not None and not reply.is_error:
                yield from req.on_complete(reply)

        yield from self.lock_policy.critical("rpciod", process())
        self.stats.completed += 1
        req.completion.trigger(reply)
