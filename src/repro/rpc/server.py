"""Server-side RPC dispatch.

Binds a program handler to a UDP port, runs a bounded pool of service
threads (knfsd-style), and keeps a duplicate-request cache so UDP
retransmissions are answered from cache instead of re-executed — NFS
WRITEs are not idempotent against a moving file size.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Callable, Dict, Generator, Tuple

from ..errors import JukeboxError
from ..net.host import Host
from ..obs.core import DISABLED
from ..sim import Semaphore
from .messages import RpcCall, RpcError, RpcReply

__all__ = ["RpcServer"]

#: Duplicate request cache entries retained.
DRC_SIZE = 1024

#: Sentinel stored in the DRC while a request is still executing.
_IN_PROGRESS = object()


class RpcServer:
    """One RPC program served from a host's UDP port."""

    def __init__(
        self,
        host: Host,
        port: int,
        handler: Callable[[RpcCall], Generator],
        nthreads: int = 8,
        name: str = "rpcserver",
    ):
        self.host = host
        self.sock = host.udp.socket(port)
        self.handler = handler
        self.name = name
        self._threads = Semaphore(host.sim, nthreads, name=f"{name}-threads")
        self.requests_handled = 0
        #: Per-source fairness accounting: served requests and request
        #: wire bytes by client host name (insertion-ordered; report
        #: paths sort the keys).  Pure bookkeeping — never iterated on
        #: the hot path.
        self.requests_by_src: Dict[str, int] = {}
        self.bytes_by_src: Dict[str, int] = {}
        self.drc_hits = 0
        self.errors = 0
        self.jukebox_replies = 0
        #: Crash mode: arriving datagrams vanish and no replies leave.
        self.drop_incoming = False
        self.dropped_while_down = 0
        self.obs = DISABLED
        self._drc: "OrderedDict[Tuple[str, int], object]" = OrderedDict()
        self._accept = host.sim.spawn(
            self._accept_loop(), name=f"{name}-accept", daemon=True
        )

    def clear_drc(self) -> None:
        """Forget the duplicate-request cache (reply-cache loss on crash)."""
        self._drc.clear()

    def _accept_loop(self):
        while True:
            dgram = yield from self.sock.recv()
            if self.drop_incoming:
                self.dropped_while_down += 1
                continue
            call = dgram.payload
            key = (dgram.src, call.xid)
            cached = self._drc.get(key)
            if cached is _IN_PROGRESS:
                continue  # retransmit of an executing request: drop
            if cached is not None:
                self.drc_hits += 1
                if self.obs.enabled:
                    self.obs.count("server/drc_hits")
                reply = cached
                self.sock.sendto(dgram.src, dgram.src_port, reply, reply.size)
                continue
            self._remember(key, _IN_PROGRESS)
            self.host.sim.spawn(
                self._serve(dgram.src, dgram.src_port, call, key),
                name=f"{self.name}-worker",
                daemon=True,
            )

    def _serve(self, src: str, src_port: int, call: RpcCall, key):
        cache_reply = True
        obs = self.obs
        yield self._threads.acquire()
        op_span = 0
        if obs.enabled:
            op_span = obs.span_begin(
                "server", f"server_{call.proc}", parent=call.span_id, xid=call.xid
            )
        try:
            result, reply_size = yield from self.handler(call)
        except JukeboxError as err:
            # NFS3ERR_JUKEBOX: "try again later".  Never cached — the
            # client retries with the same xid and must reach the
            # handler again, not a stale error (knfsd's RC_NOCACHE).
            result, reply_size = RpcError(repr(err), code="JUKEBOX"), 64
            cache_reply = False
            self.jukebox_replies += 1
        except Exception as err:  # noqa: BLE001 - server must always reply
            # A failed procedure still answers (accept-stat error) —
            # otherwise the client would retransmit forever.
            result, reply_size = RpcError(repr(err)), 64
            self.errors += 1
        finally:
            self._threads.release()
        if obs.enabled:
            obs.span_end(op_span)
        if self.drop_incoming:
            # The server crashed while this request executed: the reply
            # dies with it, and so does the in-progress DRC entry.
            self._drc.pop(key, None)
            self.dropped_while_down += 1
            return
        reply = RpcReply(
            xid=call.xid, result=result, size=reply_size, span_id=call.span_id
        )
        if cache_reply:
            self._remember(key, reply)
        else:
            self._drc.pop(key, None)
        self.requests_handled += 1
        self.requests_by_src[src] = self.requests_by_src.get(src, 0) + 1
        self.bytes_by_src[src] = self.bytes_by_src.get(src, 0) + call.size
        self.sock.sendto(src, src_port, reply, reply.size)

    def _remember(self, key, value) -> None:
        self._drc[key] = value
        self._drc.move_to_end(key)
        while len(self._drc) > DRC_SIZE:
            self._drc.popitem(last=False)
