"""Hardware resource models: RAM pools, disks, NVRAM."""

from .disk import Disk, RaidGroup
from .memory import MemoryPool
from .nvram import Nvram

__all__ = ["Disk", "RaidGroup", "MemoryPool", "Nvram"]
