"""Battery-backed write cache (the filer's NVRAM).

The F85 journals incoming writes to NVRAM and acknowledges them as
stable immediately (FILE_SYNC); the paper conjectures that this NVRAM
"acts as an extension of the client's page cache" (§3.6).  The model is
a byte pool with blocking reservation — the WAFL checkpoint machinery in
:mod:`repro.server.netapp` decides when halves drain to disk.
"""

from __future__ import annotations

from ..errors import ResourceError
from ..sim import Simulator, WaitQueue

__all__ = ["Nvram"]


class Nvram:
    """Byte-pool with blocking reservation and explicit release."""

    def __init__(self, sim: Simulator, capacity_bytes: int, name: str = "nvram"):
        if capacity_bytes <= 0:
            raise ResourceError(f"{name}: capacity must be positive")
        self._sim = sim
        self.name = name
        self.capacity = capacity_bytes
        self.used = 0
        self.peak_used = 0
        self.total_in = 0
        self._waitq = WaitQueue(sim, f"{name}-waitq")

    @property
    def available(self) -> int:
        return self.capacity - self.used

    def reserve(self, nbytes: int):
        """Generator: claim ``nbytes`` of log space, blocking while full."""
        if nbytes < 0:
            raise ResourceError(f"{self.name}: negative reservation")
        if nbytes > self.capacity:
            raise ResourceError(
                f"{self.name}: reservation {nbytes} exceeds capacity"
            )
        while nbytes > self.available:
            yield from self._waitq.sleep()
        self.used += nbytes
        self.total_in += nbytes
        if self.used > self.peak_used:
            self.peak_used = self.used

    def release(self, nbytes: int) -> None:
        """Return drained log space, waking blocked writers."""
        if nbytes < 0 or nbytes > self.used:
            raise ResourceError(
                f"{self.name}: bad release {nbytes} (used={self.used})"
            )
        self.used -= nbytes
        self._waitq.wake_all()
