"""Disk and RAID-group models.

A :class:`Disk` serialises operations (one platter, one head): each
write costs an optional seek plus a bandwidth-limited transfer.  This is
deliberately simple — the paper's benchmark is sequential precisely to
"minimize disk latency (i.e., seek time) on the server" (§2.3) — but
seeks matter for COMMIT-triggered metadata and for non-sequential
workload examples.

A :class:`RaidGroup` aggregates spindles into one logical device with a
higher transfer rate (RAID 4 with full-stripe writes, as WAFL arranges).
"""

from __future__ import annotations

from ..errors import ResourceError
from ..sim import Lock, Simulator
from ..units import transfer_time

__all__ = ["Disk", "RaidGroup"]


class Disk:
    """One spindle with FIFO-serialised operations."""

    def __init__(
        self,
        sim: Simulator,
        transfer_bytes_per_sec: float,
        seek_ns: int = 0,
        name: str = "disk",
    ):
        if transfer_bytes_per_sec <= 0:
            raise ResourceError(f"{name}: transfer rate must be positive")
        if seek_ns < 0:
            raise ResourceError(f"{name}: negative seek time")
        self._sim = sim
        self.name = name
        self.transfer_bytes_per_sec = transfer_bytes_per_sec
        self.seek_ns = seek_ns
        self._lock = Lock(sim, f"{name}-queue")
        self.bytes_written = 0
        self.bytes_read = 0
        self.ops = 0
        self.busy_ns = 0

    def write(self, nbytes: int, sequential: bool = True):
        """Generator: write ``nbytes``; seeks first unless ``sequential``."""
        yield from self._operate(nbytes, sequential)
        self.bytes_written += nbytes

    def read(self, nbytes: int, sequential: bool = True):
        """Generator: read ``nbytes``; seeks first unless ``sequential``."""
        yield from self._operate(nbytes, sequential)
        self.bytes_read += nbytes

    def _operate(self, nbytes: int, sequential: bool):
        if nbytes < 0:
            raise ResourceError(f"{self.name}: negative transfer {nbytes}")
        yield self._lock.acquire()
        try:
            duration = transfer_time(nbytes, self.transfer_bytes_per_sec)
            if not sequential:
                duration += self.seek_ns
            self.ops += 1
            self.busy_ns += duration
            yield self._sim.timeout(duration)
        finally:
            self._lock.release()


class RaidGroup(Disk):
    """RAID-4 style group: N spindles, one parity, striped transfers."""

    def __init__(
        self,
        sim: Simulator,
        ndisks: int,
        per_disk_bytes_per_sec: float,
        seek_ns: int = 0,
        name: str = "raid",
    ):
        if ndisks < 2:
            raise ResourceError(f"{name}: RAID group needs at least 2 disks")
        data_disks = ndisks - 1  # one parity spindle
        super().__init__(
            sim,
            per_disk_bytes_per_sec * data_disks,
            seek_ns=seek_ns,
            name=name,
        )
        self.ndisks = ndisks
