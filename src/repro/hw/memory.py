"""Byte-granular memory pool with blocking allocation.

Models a finite RAM capacity shared by cached pages.  Allocation blocks
the calling task until enough bytes are freed — the mechanism behind
"the VFS layer blocks the writer" when a client runs out of memory for
write requests (§3.3).
"""

from __future__ import annotations

from ..errors import ResourceError
from ..sim import Simulator, WaitQueue

__all__ = ["MemoryPool"]


class MemoryPool:
    """A capacity-limited pool of bytes with FIFO blocking allocation."""

    def __init__(self, sim: Simulator, capacity_bytes: int, name: str = "ram"):
        if capacity_bytes <= 0:
            raise ResourceError(f"{name}: capacity must be positive")
        self._sim = sim
        self.name = name
        self.capacity = capacity_bytes
        self.used = 0
        self.peak_used = 0
        self.total_allocated = 0
        self.alloc_blocks = 0
        self._waitq = WaitQueue(sim, f"{name}-waitq")

    @property
    def available(self) -> int:
        return self.capacity - self.used

    def try_alloc(self, nbytes: int) -> bool:
        """Allocate without blocking; False when short on space."""
        self._check(nbytes)
        if nbytes > self.available:
            return False
        self._take(nbytes)
        return True

    def alloc(self, nbytes: int):
        """Generator: allocate ``nbytes``, sleeping until space frees up."""
        self._check(nbytes)
        if nbytes > self.capacity:
            raise ResourceError(
                f"{self.name}: request {nbytes} exceeds capacity {self.capacity}"
            )
        blocked = False
        while nbytes > self.available:
            blocked = True
            yield from self._waitq.sleep()
        if blocked:
            self.alloc_blocks += 1
        self._take(nbytes)

    def free(self, nbytes: int) -> None:
        """Return ``nbytes`` to the pool, waking blocked allocators."""
        self._check(nbytes)
        if nbytes > self.used:
            raise ResourceError(
                f"{self.name}: freeing {nbytes} but only {self.used} in use"
            )
        self.used -= nbytes
        self._waitq.wake_all()

    @property
    def waiters(self) -> int:
        """Tasks currently blocked in :meth:`alloc`."""
        return self._waitq.sleeping

    def _take(self, nbytes: int) -> None:
        self.used += nbytes
        self.total_allocated += nbytes
        if self.used > self.peak_used:
            self.peak_used = self.used

    def _check(self, nbytes: int) -> None:
        if nbytes < 0:
            raise ResourceError(f"{self.name}: negative byte count {nbytes}")
