"""The four-way Linux 2.4.4 knfsd server.

WRITEs land UNSTABLE in the server's page cache (fast to accept, but the
client must keep its pages pinned until COMMIT); a background bdflush
writes dirty data to the single SCSI disk; COMMIT forces the file's
remaining dirty bytes out and replies only when durable.  The gigabit
NIC sits in a 32-bit/33 MHz PCI slot, capping sustained network ingest
around 26 MBps (§3.1, §3.5).
"""

from __future__ import annotations

from ..config import LinuxServerConfig, NetConfig
from ..hw import Disk
from ..net import Switch
from ..nfs3 import Stable, WriteArgs
from ..sim import Event, Simulator, WaitQueue
from ..units import MIB
from .base import NfsServerBase, ServerFile

__all__ = ["LinuxNfsServer"]

#: bdflush write-out granularity.
FLUSH_CHUNK = 1 * MIB


class LinuxNfsServer(NfsServerBase):
    """knfsd model: UNSTABLE page-cache writes + COMMIT to one spindle."""

    def __init__(
        self,
        sim: Simulator,
        switch: Switch,
        net: NetConfig,
        config: LinuxServerConfig = LinuxServerConfig(),
    ):
        super().__init__(
            sim,
            switch,
            net,
            name=config.name,
            ingest_bytes_per_sec=config.ingest_bytes_per_sec,
            ncpus=4,
        )
        self.config = config
        self.disk = Disk(
            sim,
            transfer_bytes_per_sec=config.disk_bytes_per_sec,
            seek_ns=config.disk_seek_ns,
            name=f"{config.name}-disk",
        )
        self.total_dirty = 0
        #: Server page cache is effectively its RAM minus the kernel.
        self.dirty_limit = int(config.ram_bytes * 0.8)
        self._dirty_waitq = WaitQueue(sim, f"{config.name}-dirty")
        self._bdflush_kick = Event(sim)
        self._gathers = {}
        self.gathers_started = 0
        self.sim.spawn(self._bdflush(), name=f"{config.name}-bdflush", daemon=True)

    # -- WRITE ---------------------------------------------------------------

    def store_write(self, file: ServerFile, args: WriteArgs):
        # Throttle if the server's own page cache is saturated.
        yield from self._dirty_waitq.wait_until(
            lambda: self.total_dirty + args.count <= self.dirty_limit
        )
        file.dirty_bytes += args.count
        self.total_dirty += args.count
        self._kick_bdflush()
        if args.stable >= Stable.DATA_SYNC:
            # Synchronous (NFSv2 / O_SYNC) write: data plus the inode
            # update must hit the platter before the reply — each one
            # costs a seek, the classic v2 write-throughput killer (cf.
            # the filer's no_atime_update option, §3.1).
            if self.config.write_gathering:
                yield from self._gathered_sync(file)
            else:
                yield from self._flush_file(file, seek_first=True)
            return Stable.FILE_SYNC
        return Stable.UNSTABLE

    def _gathered_sync(self, file: ServerFile):
        """Generator: knfsd write gathering — park this sync write for a
        moment so others to the same file share one seek+flush."""
        gather = self._gathers.get(file.fileid)
        if gather is None:
            gather = Event(self.sim)
            self._gathers[file.fileid] = gather
            self.sim.spawn(
                self._gather_flush(file, gather),
                name=f"{self.name}-gather",
                daemon=True,
            )
            self.gathers_started += 1
        yield gather

    def _gather_flush(self, file: ServerFile, gather: Event):
        yield self.sim.timeout(self.config.gather_ns)
        del self._gathers[file.fileid]
        yield from self._flush_file(file, seek_first=True)
        gather.trigger()

    def do_commit(self, file: ServerFile):
        yield from self._flush_file(file)

    def on_crash(self) -> None:
        """Power loss: the page cache vanishes; only the platter survives.

        Every file forgets its dirty bytes and shrinks to what bdflush or
        a COMMIT already forced out — exactly the data-loss window the
        NFSv3 verifier protocol exists to expose.
        """
        for file in self.files.values():
            file.dirty_bytes = 0
            file.size = min(file.size, file.stable_bytes)
        self.total_dirty = 0
        self._dirty_waitq.wake_all()

    def read_media(self, file: ServerFile, offset: int, count: int):
        # Files that fit the server's page cache serve from RAM; larger
        # ones hit the single spindle.
        if file.size > self.dirty_limit:
            yield from self.disk.read(count, sequential=True)

    # -- disk write-back ----------------------------------------------------------

    def _flush_file(self, file: ServerFile, seek_first: bool = False):
        """Generator: force this file's dirty bytes to the platter.

        ``seek_first`` charges one head seek for the inode/metadata
        update preceding the data (synchronous-write semantics).
        """
        first = True
        while file.dirty_bytes > 0:
            chunk = min(file.dirty_bytes, FLUSH_CHUNK)
            # Claim before the disk wait so bdflush doesn't double-write.
            file.dirty_bytes -= chunk
            self.total_dirty -= chunk
            sequential = not (seek_first and first)
            first = False
            yield from self.disk.write(chunk, sequential=sequential)
            file.stable_bytes += chunk
            self._dirty_waitq.wake_all()

    def _kick_bdflush(self) -> None:
        if not self._bdflush_kick.fired:
            self._bdflush_kick.trigger()

    def _bdflush(self):
        """Background write-out once dirty data accumulates."""
        background = self.dirty_limit // 2
        while True:
            if self.total_dirty > background:
                victim = self._dirtiest_file()
                if victim is not None:
                    chunk = min(victim.dirty_bytes, FLUSH_CHUNK)
                    victim.dirty_bytes -= chunk
                    self.total_dirty -= chunk
                    if self.obs.enabled:
                        self.obs.count("server/bdflush_bytes", chunk)
                    yield from self.disk.write(chunk, sequential=True)
                    victim.stable_bytes += chunk
                    self._dirty_waitq.wake_all()
                    continue
            self._bdflush_kick = Event(self.sim)
            if self.total_dirty > background:
                self._bdflush_kick.trigger()
            yield self._bdflush_kick

    def _dirtiest_file(self):
        best = None
        for file in self.files.values():
            if file.dirty_bytes > 0 and (
                best is None or file.dirty_bytes > best.dirty_bytes
            ):
                best = file
        return best
