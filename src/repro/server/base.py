"""Shared NFS server machinery.

Every server is a host with an RPC dispatcher and a FIFO *ingest
station* — the NIC + network stack + file-system path whose byte rate is
the server's sustained network write throughput (the paper measures
~38 MBps for the filer and ~26 MBps for the Linux box, §3.5).  Subclasses
decide where WRITE data lands (NVRAM vs page cache) and what COMMIT
costs.

A server can be *paused* (the filer does this during WAFL checkpoints):
requests keep arriving and queue, but nothing is serviced until the
pause lifts.
"""

from __future__ import annotations

from typing import Dict

from ..config import NetConfig
from ..errors import JukeboxError, ProtocolError
from ..net import Host, Switch
from ..nfs3 import (
    CommitArgs,
    CommitResult,
    CreateArgs,
    CreateResult,
    LookupArgs,
    LookupResult,
    ReadArgs,
    ReadResult,
    Stable,
    WriteArgs,
    WriteResult,
    commit_reply_size,
    read_reply_size,
    write_reply_size,
)
from ..obs.core import DISABLED
from ..rpc import RpcCall, RpcServer
from ..sim import Lock, Simulator, WaitQueue
from ..units import transfer_time

__all__ = ["NfsServerBase", "ServerFile", "NFS_PORT"]

NFS_PORT = 2049


class ServerFile:
    """Server-side file state."""

    __slots__ = (
        "fileid",
        "name",
        "size",
        "dirty_bytes",
        "stable_bytes",
        "change_id",
    )

    def __init__(self, fileid: int, name: str):
        self.fileid = fileid
        self.name = name
        self.size = 0
        #: Bytes accepted but not yet durable (page cache / NVRAM).
        self.dirty_bytes = 0
        #: Bytes durable on stable storage.
        self.stable_bytes = 0
        #: Bumped on every accepted WRITE (mtime stand-in).
        self.change_id = 0


class NfsServerBase:
    """Common dispatch, ingest station, files, pause support."""

    def __init__(
        self,
        sim: Simulator,
        switch: Switch,
        net: NetConfig,
        name: str,
        ingest_bytes_per_sec: float,
        ncpus: int = 1,
        nthreads: int = 8,
    ):
        self.sim = sim
        self.name = name
        self.host = Host(sim, name, switch, net, ncpus=ncpus)
        self.ingest_bytes_per_sec = ingest_bytes_per_sec
        self._ingest_lock = Lock(sim, f"{name}-ingest")
        self._paused = False
        self._pause_waitq = WaitQueue(sim, f"{name}-pause")
        #: NFSv3 write verifier: changes across a restart, telling
        #: clients that uncommitted UNSTABLE data may have been lost.
        self.boot_verf = 1
        self._crashed = False
        #: Until this simulated time, WRITE/COMMIT answer NFS3ERR_JUKEBOX
        #: ("try again later") — fault injection for slow media recall.
        self._jukebox_until = 0
        self.jukebox_injected = 0
        self.files: Dict[int, ServerFile] = {}
        self._next_fileid = 1
        self.bytes_received = 0
        self.writes_handled = 0
        self.commits_handled = 0
        self.reads_handled = 0
        self.bytes_served = 0
        self.obs = DISABLED
        #: Cached timeline keys (per-server, hub-owned in sharded runs).
        self._ingest_series_key = f"server/{name}/ingest_bytes"
        self._busy_series_key = f"server/{name}/ingest_busy_ns"
        self.rpc = RpcServer(self.host, NFS_PORT, self.handle, nthreads, name=name)

    # -- pause (checkpoints, fault injection) --------------------------------

    @property
    def paused(self) -> bool:
        return self._paused

    def pause(self) -> None:
        self._paused = True

    def resume(self) -> None:
        self._paused = False
        self._pause_waitq.wake_all()

    def _wait_unpaused(self):
        yield from self._pause_waitq.wait_until(lambda: not self._paused)

    # -- crash / restart (fault injection) -----------------------------------

    @property
    def crashed(self) -> bool:
        return self._crashed

    def crash(self, lose_drc: bool = True) -> None:
        """Simulate a server crash: stop servicing and answering.

        Volatile state (page cache, in-progress requests, and — unless
        ``lose_drc`` is False — the duplicate-request cache) is lost via
        the :meth:`on_crash` hook.  Clients see silence and retransmit.
        """
        self._crashed = True
        self.pause()
        self.rpc.drop_incoming = True
        if lose_drc:
            self.rpc.clear_drc()
        self.on_crash()

    def restart(self) -> None:
        """Bring a crashed server back with a fresh write verifier."""
        if not self._crashed:
            return
        self._crashed = False
        self.rpc.drop_incoming = False
        # A reboot changes the verifier; clients comparing it against
        # the verf their UNSTABLE writes returned must rewrite.
        self.boot_verf += 1
        self.resume()

    def jukebox_window(self, duration_ns: int) -> None:
        """Answer WRITE/COMMIT with NFS3ERR_JUKEBOX for ``duration_ns``."""
        self._jukebox_until = max(self._jukebox_until, self.sim.now + duration_ns)

    def on_crash(self) -> None:
        """Subclass hook: discard whatever a power loss would destroy."""

    # -- ingest station ------------------------------------------------------

    def ingest_shares(self) -> Dict[str, float]:
        """Fraction of served request wire bytes per client host.

        The FIFO ingest station has no scheduler, so fairness between
        clients is emergent; this is the accounting multi-client
        topology reports audit.  Keys are sorted for determinism.
        """
        by_src = self.rpc.bytes_by_src
        total = sum(by_src.values())
        if not total:
            return {}
        return {src: by_src[src] / total for src in sorted(by_src)}

    def _ingest(self, nbytes: int):
        """Generator: FIFO service at the server's sustained byte rate."""
        yield self._ingest_lock.acquire()
        try:
            yield from self._wait_unpaused()
            busy_ns = transfer_time(nbytes, self.ingest_bytes_per_sec)
            yield self.sim.timeout(busy_ns)
            if self.obs.enabled:
                # Per-window busy time: window_bytes/window_ns is the
                # ingest-utilization timeline the SLO reports attribute to.
                self.obs.series_count(self._busy_series_key, busy_ns)
        finally:
            self._ingest_lock.release()

    # -- dispatch -------------------------------------------------------------

    def handle(self, call: RpcCall):
        """Generator: RPC program handler; returns (result, reply_size)."""
        if self.obs.enabled:
            self.obs.count(f"server/ops/{call.proc}")
        if call.proc in ("WRITE", "COMMIT") and self.sim.now < self._jukebox_until:
            self.jukebox_injected += 1
            if self.obs.enabled:
                self.obs.count("server/jukebox_injected")
            raise JukeboxError(
                f"{self.name}: {call.proc} deferred, media being recalled"
            )
        if call.proc == "WRITE":
            return (yield from self._handle_write(call.args, call.size))
        if call.proc == "READ":
            return (yield from self._handle_read(call.args, call.size))
        if call.proc == "COMMIT":
            return (yield from self._handle_commit(call.args, call.size))
        if call.proc == "CREATE":
            return (yield from self._handle_create(call.args, call.size))
        if call.proc == "LOOKUP":
            return (yield from self._handle_lookup(call.args, call.size))
        raise ProtocolError(f"{self.name}: unknown procedure {call.proc!r}")

    def _handle_write(self, args: WriteArgs, wire_size: int):
        file = self._file(args.fileid)
        yield from self._ingest(wire_size)
        committed = yield from self.store_write(file, args)
        self.bytes_received += args.count
        self.writes_handled += 1
        if self.obs.enabled:
            self.obs.count("server/bytes_received", args.count)
            self.obs.series_count(self._ingest_series_key, args.count)
        file.change_id += 1
        end = args.offset + args.count
        if end > file.size:
            file.size = end
        return (
            WriteResult(
                count=args.count,
                committed=committed,
                change_id=file.change_id,
                verf=self.boot_verf,
            ),
            write_reply_size(),
        )

    def _handle_read(self, args: ReadArgs, wire_size: int):
        file = self._file(args.fileid)
        available = max(0, file.size - args.offset)
        count = min(args.count, available)
        eof = args.offset + count >= file.size
        if count == 0:
            yield from self._ingest(wire_size)
            return ReadResult(count=0, eof=True), read_reply_size(0)
        yield from self.read_media(file, args.offset, count)
        # Egress shares the same NIC/stack path as ingest.
        yield from self._ingest(read_reply_size(count))
        self.reads_handled += 1
        self.bytes_served += count
        return ReadResult(count=count, eof=eof), read_reply_size(count)

    def _handle_commit(self, args: CommitArgs, wire_size: int):
        file = self._file(args.fileid)
        yield from self._ingest(wire_size)
        yield from self.do_commit(file)
        self.commits_handled += 1
        return CommitResult(verf=self.boot_verf), commit_reply_size()

    def _handle_create(self, args: CreateArgs, wire_size: int):
        yield from self._ingest(wire_size)
        file = ServerFile(self._next_fileid, args.name)
        self._next_fileid += 1
        self.files[file.fileid] = file
        return CreateResult(fileid=file.fileid), 160

    def _handle_lookup(self, args: LookupArgs, wire_size: int):
        yield from self._ingest(wire_size)
        for file in self.files.values():
            if file.name == args.name:
                return (
                    LookupResult(
                        fileid=file.fileid,
                        size=file.size,
                        change_id=file.change_id,
                    ),
                    160,
                )
        raise ProtocolError(f"{self.name}: no such file {args.name!r}")

    def _file(self, fileid: int) -> ServerFile:
        try:
            return self.files[fileid]
        except KeyError:
            raise ProtocolError(f"{self.name}: stale file handle {fileid}") from None

    # -- subclass hooks ------------------------------------------------------------

    def store_write(self, file: ServerFile, args: WriteArgs):
        """Generator: land the data; returns the committed Stable level."""
        raise NotImplementedError  # pragma: no cover

    def do_commit(self, file: ServerFile):
        """Generator: make the file's accepted data durable."""
        raise NotImplementedError  # pragma: no cover

    def read_media(self, file: ServerFile, offset: int, count: int):
        """Generator: media cost of serving a READ (default: cached)."""
        return
        yield  # pragma: no cover - generator marker
