"""The prototype Network Appliance F85 filer.

Behavioural essentials from the paper:

* Writes are journalled to **NVRAM** and acknowledged ``FILE_SYNC`` —
  no COMMIT needed (§3.5), and the NVRAM effectively extends the
  client's page cache (§3.6).
* NVRAM is split into two halves.  When the active half fills, WAFL
  takes a **checkpoint**: the halves swap and the full one drains to the
  RAID-4 volume.  The prototype "briefly stops responding to network
  write requests during a file system checkpoint" (§3.5) — the cause of
  Fig. 4's low-jitter gap — modelled as a request-processing pause at
  checkpoint start.
* If the inactive half has not finished draining when the active half
  fills (sustained overload), incoming writes wait: throughput becomes
  drain-bound.
"""

from __future__ import annotations

from ..config import FilerConfig, NetConfig
from ..errors import ResourceError
from ..hw import RaidGroup
from ..net import Switch
from ..nfs3 import Stable, WriteArgs
from ..sim import Simulator, WaitQueue
from .base import NfsServerBase, ServerFile

__all__ = ["NetappFiler"]


class NetappFiler(NfsServerBase):
    """F85 model: NVRAM halves + checkpoint pauses + RAID-4 drain."""

    def __init__(
        self,
        sim: Simulator,
        switch: Switch,
        net: NetConfig,
        config: FilerConfig = FilerConfig(),
    ):
        super().__init__(
            sim,
            switch,
            net,
            name=config.name,
            ingest_bytes_per_sec=config.ingest_bytes_per_sec,
            ncpus=1,
        )
        self.config = config
        self.half_size = config.nvram_bytes // 2
        if self.half_size <= 0:
            raise ResourceError("NVRAM too small to halve")
        self.raid = RaidGroup(
            sim, ndisks=8, per_disk_bytes_per_sec=config.raid_drain_bytes_per_sec / 7,
            name=f"{config.name}-raid",
        )
        self.active_half_used = 0
        self.draining = False
        self._drain_waitq = WaitQueue(sim, f"{config.name}-nvram-wait")
        self.checkpoints = 0
        #: (start_ns, end_ns) of each request-processing pause.
        self.checkpoint_windows = []

    # -- WRITE --------------------------------------------------------------

    def store_write(self, file: ServerFile, args: WriteArgs):
        if args.count > self.half_size:
            raise ResourceError(
                f"{self.name}: write {args.count} exceeds an NVRAM half"
            )
        if self.active_half_used + args.count > self.half_size:
            # Active half is full: checkpoint. If the previous one is
            # still draining we are drain-bound and must wait for it.
            yield from self._drain_waitq.wait_until(lambda: not self.draining)
            self._begin_checkpoint()
        self.active_half_used += args.count
        file.dirty_bytes = 0  # NVRAM-stable immediately
        file.stable_bytes = max(file.stable_bytes, args.offset + args.count)
        return Stable.FILE_SYNC

    def do_commit(self, file: ServerFile):
        # Everything acknowledged is already FILE_SYNC: COMMIT is a no-op.
        return
        yield  # pragma: no cover - generator marker

    def on_crash(self) -> None:
        # Battery-backed NVRAM: everything acknowledged survives the
        # crash, which is the whole point of the design.  WAFL replays
        # the journal on boot; no state to discard here.
        return

    #: Filer read-cache budget (256 MB RAM, §3.1).
    READ_CACHE_BYTES = 256 * 1024 * 1024

    def read_media(self, file: ServerFile, offset: int, count: int):
        if file.size > self.READ_CACHE_BYTES:
            yield from self.raid.read(count, sequential=True)

    # -- checkpoint machinery ----------------------------------------------------

    def _begin_checkpoint(self) -> None:
        self.checkpoints += 1
        full_half = self.active_half_used
        self.active_half_used = 0
        self.draining = True
        if self.obs.enabled:
            self.obs.count("server/checkpoints")
            self.obs.span_point("server", "checkpoint", bytes=full_half)
        # The prototype stops servicing requests briefly at CP start.
        self.pause()
        start = self.sim.now
        self.sim.schedule(self.config.checkpoint_pause_ns, self._end_pause, start)
        self.sim.spawn(
            self._drain(full_half), name=f"{self.name}-cp-drain", daemon=True
        )

    def _end_pause(self, started_at: int) -> None:
        self.checkpoint_windows.append((started_at, self.sim.now))
        if not self._crashed:  # a crash mid-checkpoint stays down
            self.resume()

    def _drain(self, nbytes: int):
        yield from self.raid.write(nbytes, sequential=True)
        self.draining = False
        self._drain_waitq.wake_all()
