"""A minimal parametric NFS server for tests and ablations.

Serves WRITEs at a configurable ingest rate and acknowledges them at a
configurable stability level, with free COMMITs.  Useful as the
"memory-only server" the paper considered (and rejected) in §2.3, as an
infinitely slow server (pause it), or wherever a controlled counterpart
is needed.
"""

from __future__ import annotations

from ..config import NetConfig
from ..nfs3 import Stable, WriteArgs
from ..net import Switch
from ..sim import Simulator
from .base import NfsServerBase, ServerFile

__all__ = ["SimpleNfsServer"]


class SimpleNfsServer(NfsServerBase):
    """Ingest-rate-limited server with no storage behind it."""

    def __init__(
        self,
        sim: Simulator,
        switch: Switch,
        net: NetConfig,
        ingest_bytes_per_sec: float,
        stable_level: Stable = Stable.FILE_SYNC,
        name: str = "simple-server",
    ):
        super().__init__(
            sim, switch, net, name=name, ingest_bytes_per_sec=ingest_bytes_per_sec
        )
        self.stable_level = stable_level

    def store_write(self, file: ServerFile, args: WriteArgs):
        file.stable_bytes = max(file.stable_bytes, args.offset + args.count)
        return self.stable_level
        yield  # pragma: no cover - generator marker

    def do_commit(self, file: ServerFile):
        return
        yield  # pragma: no cover - generator marker
