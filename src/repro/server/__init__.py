"""NFS server models: the NetApp filer, Linux knfsd, and a test server."""

from .base import NFS_PORT, NfsServerBase, ServerFile
from .linux_nfsd import LinuxNfsServer
from .netapp import NetappFiler
from .simple import SimpleNfsServer

__all__ = [
    "NfsServerBase",
    "ServerFile",
    "NFS_PORT",
    "NetappFiler",
    "LinuxNfsServer",
    "SimpleNfsServer",
]
