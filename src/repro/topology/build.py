"""Topology assembly: N client stacks, M servers, one switch.

:class:`Topology` materialises a cluster from declarative specs.  Each
client is a full independent stack — host, page cache, NFS client (or
local ext2) and syscall layer, with its own variant and mount options —
wired through a shared :class:`~repro.net.switch.Switch` whose per-host
output ports are where multi-client contention physically happens, to
one or more servers whose FIFO ingest stations queue the aggregated
request streams.

The single-client build follows the exact assembly order of the
original ``TestBed`` (host → page cache → server → NFS client → syscall
layer → profiler → sanitizers → observability), so task creation — and
therefore every event timestamp downstream — is unchanged: a 1-client
Topology is bit-identical to the seed test bed, and ``TestBed`` itself
is now a thin shim over it.
"""

from __future__ import annotations

import dataclasses
import warnings
from typing import Any, Dict, List, Optional, Sequence, Union

from ..bench.bonnie import BenchmarkResult
from ..config import ClientHwConfig, MountConfig, NetConfig, NfsClientConfig
from ..errors import ConfigError
from ..kernel.pagecache import PageCache
from ..kernel.syscalls import SyscallLayer
from ..localfs import Ext2Fs
from ..net import Host, Switch
from ..nfsclient import NfsClient
from ..nfsclient.variants import variant_config
from ..obs.core import DISABLED
from ..server import LinuxNfsServer, NetappFiler
from ..sim import SamplingProfiler, Simulator
from ..units import us
from .spec import ClientSpec, ServerSpec, SwitchSpec

__all__ = ["Topology", "ClientStack", "materialise_server"]


class ClientStack:
    """One assembled client machine inside a :class:`Topology`.

    Duck-type compatible with the single-client bed the sanitizers and
    benchmarks expect: exposes ``sim``, ``nfs``, ``ext2``, ``server``,
    ``syscalls``, ``pagecache`` and ``open_file``.
    """

    #: Not a pytest test class.
    __test__ = False

    def __init__(self, topology: "Topology", index: int, spec: ClientSpec):
        self.topology = topology
        self.index = index
        self.spec = spec
        self.sim = topology.sim
        if spec.name is not None:
            self.name = spec.name
        elif len(topology.client_specs) == 1:
            self.name = "client"
        else:
            self.name = f"client{index}"
        self.hw = spec.hw or ClientHwConfig()
        self.net = spec.net or NetConfig.gigabit()
        self.mount = spec.mount or MountConfig()
        if isinstance(spec.client, str):
            self.client_config = variant_config(spec.client)
        else:
            self.client_config = spec.client or NfsClientConfig()
        #: Filled in by the Topology build phases.
        self.host: Optional[Host] = None
        self.pagecache: Optional[PageCache] = None
        self.server = None
        self.nfs: Optional[NfsClient] = None
        self.ext2: Optional[Ext2Fs] = None
        self.syscalls: Optional[SyscallLayer] = None
        self.profiler: Optional[SamplingProfiler] = None
        self.sanitizer = None
        self.obs = DISABLED

    # -- phases (called by Topology in seed TestBed order) -------------------

    def _build_host(self) -> None:
        self.host = Host(
            self.sim,
            self.name,
            self.topology.switch,
            self.net,
            ncpus=self.hw.ncpus,
            costs=self.hw.costs,
        )
        self.pagecache = PageCache(
            self.sim,
            dirty_limit_bytes=self.hw.dirty_limit_bytes,
            background_bytes=self.hw.dirty_background_bytes,
        )

    def _build_stack(self, profile: bool) -> None:
        server_spec = self.topology.server_specs[self.spec.server]
        if server_spec.is_local:
            self.ext2 = Ext2Fs(
                self.host,
                self.pagecache,
                server_spec.config or _default_config(server_spec.kind),
            )
        else:
            # In a sharded world the server object lives in the hub
            # shard, so ``servers[i]`` may be None here; the mount
            # target is named by the resolved spec either way.
            self.server = self.topology.servers[self.spec.server]
            self.nfs = NfsClient(
                self.host,
                self.pagecache,
                server=server_spec.name,
                mount=self.mount,
                behavior=self.client_config,
            )
        self.syscalls = SyscallLayer(
            self.host, instrument=self.client_config.instrument_latency
        )
        if profile:
            self.profiler = SamplingProfiler(
                self.sim, self.host.cpus, period=us(100)
            )
            self.profiler.start()

    @property
    def target(self) -> str:
        """The server kind this client mounts (``TestBed.target``)."""
        return self.topology.server_specs[self.spec.server].kind

    # -- workload ------------------------------------------------------------

    def open_file(self, name: str = "testfile"):
        """Generator: create a fresh file on this client's target."""
        if self.nfs is not None:
            return (yield from self.nfs.open_new(name))
        return (yield from self.ext2.open_new(name))


def _default_config(kind: str):
    from .spec import _KIND_CONFIG

    return _KIND_CONFIG[kind]()


class Topology:
    """A materialised cluster: clients, servers, switch — one simulation."""

    __test__ = False

    def __init__(
        self,
        clients: Union[Sequence[ClientSpec], int] = 1,
        servers: Sequence[ServerSpec] = (ServerSpec(),),
        switch: SwitchSpec = SwitchSpec(),
        profile: bool = False,
        observe: bool = False,
    ):
        if isinstance(clients, int):
            clients = ClientSpec().replicate(clients)
        if not clients:
            raise ConfigError("a topology needs at least one client")
        if not servers:
            raise ConfigError("a topology needs at least one server")
        self.client_specs = tuple(clients)
        self.server_specs = tuple(_named_server_specs(servers))
        self.switch_spec = switch
        for i, spec in enumerate(self.client_specs):
            if spec.server >= len(self.server_specs):
                raise ConfigError(
                    f"client {i} mounts server {spec.server}, but only "
                    f"{len(self.server_specs)} server(s) are defined"
                )

        self.sim = Simulator()
        self.switch = Switch(self.sim, name=switch.name, seed=switch.seed)

        # Assembly phases in seed TestBed order: every client's host and
        # page cache, then the servers, then every client's filesystem
        # stack + profiler, then sanitizers, then observability.  For a
        # single client this is exactly the original construction
        # sequence, so task creation — and every event downstream — is
        # bit-identical to the historical TestBed.
        self.clients: List[ClientStack] = [
            ClientStack(self, i, spec) for i, spec in enumerate(self.client_specs)
        ]
        for stack in self.clients:
            stack._build_host()

        self.servers: List[Optional[object]] = []
        for spec in self.server_specs:
            self.servers.append(self._build_server(spec))

        for stack in self.clients:
            stack._build_stack(profile)

        # Runtime sanitizers (lock order, races, invariants) attach per
        # client stack — each stack duck-types as a one-client bed.
        from ..analysis.sanitize.runtime import attach_if_active

        self.sanitizers = []
        for stack in self.clients:
            stack.sanitizer = attach_if_active(stack)
            self.sanitizers.append(stack.sanitizer)

        # One observer per simulation; fleets get per-client scoped
        # views (metric keys prefixed with the client name).
        from ..obs.core import attach_topology_if_active

        self.obs = attach_topology_if_active(self, observe=observe)

    def _build_server(self, spec: ServerSpec):
        return materialise_server(self.sim, self.switch, spec)

    # -- convenience ---------------------------------------------------------

    def client(self, index: int = 0) -> ClientStack:
        return self.clients[index]

    def server(self, index: int = 0):
        return self.servers[index]

    def run_sequential_write(
        self,
        file_bytes: int,
        chunk_bytes: int = 8192,
        do_fsync: bool = True,
        time_limit_ns: Optional[int] = None,
        client: int = 0,
    ) -> BenchmarkResult:
        """Deprecated: run the sequential-write workload on one client.

        A bit-identical shim over the workload registry — use
        ``run_workload("sequential-write", ...)`` instead.  Fleet runs
        — every client writing concurrently — live in
        :class:`repro.topology.fleet.FleetWorkload`.
        """
        warnings.warn(
            "Topology.run_sequential_write is deprecated; use "
            'Topology.run_workload("sequential-write", ...) instead',
            DeprecationWarning,
            stacklevel=2,
        )
        return self.run_workload(
            "sequential-write",
            {
                "file_bytes": file_bytes,
                "chunk_bytes": chunk_bytes,
                "do_fsync": do_fsync,
                "file_name": "testfile",
            },
            time_limit_ns=time_limit_ns,
            client=client,
        )

    def run_workload(
        self,
        name: str,
        params: Optional[Dict[str, Any]] = None,
        time_limit_ns: Optional[int] = None,
        client: int = 0,
    ):
        """Run one registered workload on one client (blocking).

        Returns the workload body's result (a ``BenchmarkResult`` for
        ``"sequential-write"``, a ``WorkloadOutcome`` otherwise).
        """
        from ..bench.workloads import get_workload, run_client_workload

        workload = get_workload(name, params)
        _start, _end, result = run_client_workload(
            self, workload, client=client, time_limit_ns=time_limit_ns
        )
        return result


def materialise_server(sim: Simulator, switch: Switch, spec: ServerSpec):
    """Build one server object on ``switch`` from a resolved spec.

    Module-level so sharded worlds can attach servers to a hub shard's
    switch without assembling a full :class:`Topology`.  Local specs
    yield ``None`` (the client stack hosts an Ext2Fs instead).
    """
    if spec.is_local:
        return None
    config = spec.config or _default_config(spec.kind)
    if spec.kind == "netapp":
        net = spec.net or NetConfig.gigabit()
        return NetappFiler(sim, switch, net, config)
    if spec.kind == "linux":
        net = spec.net or NetConfig.gigabit()
        return LinuxNfsServer(sim, switch, net, config)
    # linux-100: the same knfsd behind 100 Mbps Ethernet (§3.5).
    net = spec.net or NetConfig.fast_ethernet()
    return LinuxNfsServer(sim, switch, net, config)


def _named_server_specs(specs: Sequence[ServerSpec]) -> List[ServerSpec]:
    """Resolve server names: spec.name overrides config.name, and name
    collisions between servers get a deterministic ``-<index>`` suffix
    (two hosts may not share a switch port name)."""
    resolved: List[ServerSpec] = []
    used: dict = {}
    for index, spec in enumerate(specs):
        if spec.is_local:
            resolved.append(spec)
            continue
        config = spec.config or _default_config(spec.kind)
        name = spec.name or config.name
        if name in used:
            name = f"{name}-{index}"
        used[name] = index
        if name != config.name:
            config = dataclasses.replace(config, name=name)
        resolved.append(dataclasses.replace(spec, config=config, name=name))
    return resolved
