"""Declarative cluster specifications.

A topology is described entirely by value objects — picklable frozen
dataclasses that fingerprint cleanly through :func:`repro.cache.
fingerprint` — and materialised by :class:`repro.topology.Topology`:

* :class:`ClientSpec` — one client machine's stack (hardware, link,
  mount options, client variant),
* :class:`ServerSpec` — one target: kind (``netapp`` / ``linux`` /
  ``linux-100`` / ``local``) plus the matching config object,
* :class:`SwitchSpec` — the shared switch.

``ServerSpec`` is also the replacement for the old ``TestBed``
``filer_config``/``linux_config``/``local_config`` kwarg pile:
:meth:`ServerSpec.from_legacy` converts those kwargs, raising a
:class:`~repro.errors.ConfigError` that names the replacement whenever
a config is passed for a target that would have silently ignored it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple, Union

from ..config import (
    ClientHwConfig,
    FilerConfig,
    LinuxServerConfig,
    LocalFsConfig,
    MountConfig,
    NetConfig,
    NfsClientConfig,
)
from ..errors import ConfigError

__all__ = ["ClientSpec", "ServerSpec", "SwitchSpec", "SERVER_KINDS"]

#: The target kinds a :class:`ServerSpec` can name (the historical
#: ``TestBed`` targets).
SERVER_KINDS = ("netapp", "linux", "linux-100", "local")

#: Server kind -> the config dataclass it accepts.
_KIND_CONFIG = {
    "netapp": FilerConfig,
    "linux": LinuxServerConfig,
    "linux-100": LinuxServerConfig,
    "local": LocalFsConfig,
}

#: Legacy TestBed kwarg -> the kinds it applied to.
_LEGACY_KWARGS = {
    "filer_config": ("netapp",),
    "linux_config": ("linux", "linux-100"),
    "local_config": ("local",),
}


@dataclass(frozen=True)
class SwitchSpec:
    """The shared switch every host plugs into."""

    name: str = "switch"
    #: Seed of the switch's loss RNG stream (fault injection).
    seed: int = 0


@dataclass(frozen=True)
class ServerSpec:
    """One target: a server machine, or client-local ext2.

    ``config`` must match ``kind`` (``FilerConfig`` for ``netapp``,
    ``LinuxServerConfig`` for ``linux``/``linux-100``, ``LocalFsConfig``
    for ``local``); ``None`` takes the kind's defaults.  ``net``
    overrides the server's link (``linux-100`` defaults to 100 Mbps
    fast Ethernet, everything else to the topology's default network).
    ``name`` overrides the server host name when several servers of the
    same kind share a switch.
    """

    kind: str = "netapp"
    config: Union[FilerConfig, LinuxServerConfig, LocalFsConfig, None] = None
    net: Optional[NetConfig] = None
    name: Optional[str] = None

    def __post_init__(self) -> None:
        if self.kind not in SERVER_KINDS:
            raise ConfigError(
                f"unknown server kind {self.kind!r} (expected one of {SERVER_KINDS})"
            )
        expected = _KIND_CONFIG[self.kind]
        if self.config is not None and not isinstance(self.config, expected):
            raise ConfigError(
                f"ServerSpec(kind={self.kind!r}) takes a {expected.__name__}, "
                f"got {type(self.config).__name__}"
            )

    @property
    def is_local(self) -> bool:
        """Client-local ext2: no server host, no network."""
        return self.kind == "local"

    @staticmethod
    def from_legacy(
        target: str,
        filer_config: Optional[FilerConfig] = None,
        linux_config: Optional[LinuxServerConfig] = None,
        local_config: Optional[LocalFsConfig] = None,
    ) -> "ServerSpec":
        """Convert the deprecated per-kind TestBed kwargs.

        A config passed for a target that does not use it was silently
        ignored by the old kwarg pile; here it is a :class:`ConfigError`
        naming the ``ServerSpec`` replacement.
        """
        if target not in SERVER_KINDS:
            raise ConfigError(
                f"unknown target {target!r} (expected one of {SERVER_KINDS})"
            )
        chosen = None
        for kwarg, kinds in _LEGACY_KWARGS.items():
            value = {
                "filer_config": filer_config,
                "linux_config": linux_config,
                "local_config": local_config,
            }[kwarg]
            if value is None:
                continue
            if target not in kinds:
                expected = _KIND_CONFIG[target].__name__
                raise ConfigError(
                    f"{kwarg} is ignored by target {target!r} — pass "
                    f"server=ServerSpec({target!r}, config={expected}(...)) "
                    "instead of the per-kind kwargs"
                )
            chosen = value
        return ServerSpec(kind=target, config=chosen)


@dataclass(frozen=True)
class ClientSpec:
    """One client machine: host + page cache + syscall layer + NFS client.

    ``client`` is a variant name (``"stock"``, ``"enhanced"``, ...) or
    an explicit :class:`~repro.config.NfsClientConfig`.  ``server``
    picks which of the topology's servers this client mounts (by index).
    ``start_offset_ns`` delays this client's workload in fleet runs —
    staggered starts.  ``chunk_bytes`` overrides the fleet's write size
    for this client (mixed-size workloads); 0 means "use the fleet
    default".
    """

    client: Union[str, NfsClientConfig] = "stock"
    hw: Optional[ClientHwConfig] = None
    net: Optional[NetConfig] = None
    mount: Optional[MountConfig] = None
    name: Optional[str] = None
    server: int = 0
    start_offset_ns: int = 0
    chunk_bytes: int = 0

    def __post_init__(self) -> None:
        if self.server < 0:
            raise ConfigError(f"server index must be >= 0, got {self.server}")
        if self.start_offset_ns < 0:
            raise ConfigError("start_offset_ns must be >= 0")
        if self.chunk_bytes < 0:
            raise ConfigError("chunk_bytes must be >= 0")

    def replicate(self, count: int) -> Tuple["ClientSpec", ...]:
        """``count`` identical copies of this spec (a homogeneous fleet)."""
        if count < 1:
            raise ConfigError(f"client count must be >= 1, got {count}")
        return tuple(self for _ in range(count))
