"""Composable multi-client cluster topologies.

Declarative specs (:class:`ClientSpec`, :class:`ServerSpec`,
:class:`SwitchSpec`) materialised into N independent client stacks and
M servers sharing one switch (:class:`Topology`), plus fleet workloads
that drive every client concurrently and report per-client and
aggregate throughput, p99 latency, and Jain's fairness index
(:class:`FleetWorkload`).  See ``docs/scale.md``.
"""

from .build import ClientStack, Topology
from .fleet import (
    FleetClientResult,
    FleetJobSpec,
    FleetPointResult,
    FleetResult,
    FleetWorkload,
    reduce_fleet,
    run_fleet_job,
)
from .spec import SERVER_KINDS, ClientSpec, ServerSpec, SwitchSpec

__all__ = [
    "Topology",
    "ClientStack",
    "ClientSpec",
    "ServerSpec",
    "SwitchSpec",
    "SERVER_KINDS",
    "FleetWorkload",
    "FleetResult",
    "FleetClientResult",
    "FleetJobSpec",
    "FleetPointResult",
    "reduce_fleet",
    "run_fleet_job",
]
