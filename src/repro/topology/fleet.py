"""Fleet workloads: N concurrent clients on one Topology.

:class:`FleetWorkload` runs every client of a topology through a
registered :class:`~repro.bench.workloads.Workload` *simultaneously* —
the paper's sequential writer by default, any registry entry (including
the open-loop traffic driver of :mod:`repro.traffic`) by name —
optionally with staggered starts and per-client write sizes — and
reduces the outcome to per-client and aggregate figures: individual
throughput and p99 write latency, aggregate throughput over the
contended window, Jain's fairness index across clients, and the
servers' per-source ingest shares plus output-port queueing.

The sweep-facing half mirrors :mod:`repro.parallel.executor`:
:class:`FleetJobSpec` is a picklable value object describing one fleet
point, :func:`run_fleet_job` materialises and runs it, and
:class:`FleetPointResult` survives pickling and the JSON result cache.
Importing this module registers the pair with the executor, so
``SweepExecutor.map`` fans fleet points out over processes — and caches
them — exactly like single-client points.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..analysis.stats import jain_index
from ..bench.bonnie import BenchmarkResult
from ..cache import fingerprint
from ..errors import ConfigError
from ..units import throughput, to_mbps, to_us
from .build import Topology
from .spec import ClientSpec, ServerSpec, SwitchSpec

__all__ = [
    "FleetWorkload",
    "FleetClientResult",
    "FleetResult",
    "FleetJobSpec",
    "FleetPointResult",
    "fleet_client_body",
    "fleet_workload_for",
    "client_row",
    "server_rows",
    "reduce_fleet",
    "run_fleet_job",
]


@dataclass
class FleetClientResult:
    """One client's run inside a fleet: absolute window + outcome.

    ``result`` is whatever the client's workload body returned — a
    :class:`BenchmarkResult` for the sequential writer, a
    :class:`~repro.bench.workloads.WorkloadOutcome` for everything
    else; the accessors below bridge the two shapes.
    """

    name: str
    #: Simulated time this client's workload actually began (after any
    #: staggered-start offset) and finished.
    start_ns: int
    end_ns: int
    result: Any

    @property
    def bytes_written(self) -> int:
        if isinstance(self.result, BenchmarkResult):
            return self.result.file_bytes
        return self.result.bytes_written

    @property
    def write_throughput(self) -> float:
        if isinstance(self.result, BenchmarkResult):
            return self.result.write_throughput
        return throughput(self.bytes_written, self.end_ns - self.start_ns)

    @property
    def write_mbps(self) -> float:
        return to_mbps(self.write_throughput)

    @property
    def close_mbps(self) -> float:
        if isinstance(self.result, BenchmarkResult):
            return self.result.close_mbps
        return self.write_mbps

    @property
    def p99_ns(self) -> int:
        return self.result.trace.percentile_ns(99)


@dataclass
class FleetResult:
    """Per-client results plus fleet-level fairness accounting."""

    clients: List[FleetClientResult]
    #: Simulator callbacks dispatched for the whole fleet run.
    events_processed: int
    #: Per-server accounting rows (name, bytes, shares, port queueing),
    #: in server order.
    servers: List[Dict[str, Any]] = field(default_factory=list)
    #: Per-client reduced rows in client order, built by each client's
    #: workload (``None`` for hand-assembled legacy results — the
    #: reducer falls back to the sequential-write row shape).
    rows: Optional[List[Dict[str, Any]]] = None

    @property
    def total_bytes(self) -> int:
        return sum(c.bytes_written for c in self.clients)

    @property
    def span_ns(self) -> int:
        """First benchmark start to last benchmark finish."""
        if not self.clients:
            return 0
        return max(c.end_ns for c in self.clients) - min(
            c.start_ns for c in self.clients
        )

    @property
    def aggregate_bytes_per_sec(self) -> float:
        """Fleet throughput over the whole contended window."""
        return throughput(self.total_bytes, self.span_ns)

    @property
    def aggregate_mbps(self) -> float:
        return to_mbps(self.aggregate_bytes_per_sec)

    @property
    def fairness(self) -> float:
        """Jain's index over per-client write throughput."""
        return jain_index([c.write_throughput for c in self.clients])

    def summary(self) -> str:
        return (
            f"{len(self.clients)} client(s): aggregate "
            f"{self.aggregate_mbps:.1f} MBps, Jain {self.fairness:.3f}"
        )


class FleetWorkload:
    """N concurrent workload bodies, one per topology client.

    The default is the paper's sequential writer (``file_bytes``/
    ``chunk_bytes``/``do_fsync``); ``workload=(name, params)`` swaps in
    any registered :class:`~repro.bench.workloads.Workload`, and
    ``arrivals=ArrivalSpec(...)`` runs every client open-loop through
    the ``"open-loop"`` driver on ``seed``-keyed streams.

    ``stagger_ns`` adds ``index * stagger_ns`` to each client's start
    on top of its spec's own ``start_offset_ns``; a client spec's
    ``chunk_bytes`` (when non-zero) overrides the fleet-wide chunk size,
    giving mixed-write-size fleets.
    """

    def __init__(
        self,
        topology: Topology,
        file_bytes: int = 0,
        chunk_bytes: int = 8192,
        do_fsync: bool = True,
        stagger_ns: int = 0,
        workload: Optional[Tuple[str, Any]] = None,
        arrivals: Any = None,
        seed: int = 1,
    ):
        if workload is None and arrivals is None and file_bytes <= 0:
            raise ConfigError("file_bytes must be positive")
        if stagger_ns < 0:
            raise ConfigError("stagger_ns must be >= 0")
        self.topology = topology
        self.file_bytes = file_bytes
        self.chunk_bytes = chunk_bytes
        self.do_fsync = do_fsync
        self.stagger_ns = stagger_ns
        self.workload = workload
        self.arrivals = arrivals
        self.seed = seed

    def _workload_for(self, stack):
        from ..bench.workloads import get_workload

        if self.arrivals is not None:
            return get_workload(
                "open-loop", {"arrivals": self.arrivals, "seed": self.seed}
            )
        if self.workload is not None:
            name, params = self.workload
            return get_workload(name, dict(params))
        return get_workload(
            "sequential-write",
            {
                "file_bytes": self.file_bytes,
                "chunk_bytes": stack.spec.chunk_bytes or self.chunk_bytes,
                "do_fsync": self.do_fsync,
            },
        )

    def run(self, time_limit_ns: Optional[int] = None) -> FleetResult:
        """Run every client to completion (blocking); returns the fleet."""
        from ..bench.workloads import client_workload_body

        topo = self.topology
        sim = topo.sim
        tasks = []
        workloads = []
        for stack in topo.clients:
            offset = stack.spec.start_offset_ns + stack.index * self.stagger_ns
            workload = self._workload_for(stack)
            workloads.append(workload)
            tasks.append(
                sim.spawn(
                    client_workload_body(stack, workload, offset),
                    name=f"benchmark-{stack.name}",
                    daemon=True,
                )
            )
        sim.run_until(lambda: all(t.done for t in tasks), limit=time_limit_ns)
        stragglers = [
            stack.name for stack, t in zip(topo.clients, tasks) if not t.done
        ]
        if stragglers:
            raise ConfigError(
                f"fleet benchmark did not finish on {', '.join(stragglers)}; "
                "simulation wedged?"
            )
        for task in tasks:
            if task.error is not None:
                raise task.error
        for stack in topo.clients:
            if stack.profiler is not None:
                stack.profiler.stop()
        clients = [
            FleetClientResult(stack.name, *task.result)
            for stack, task in zip(topo.clients, tasks)
        ]
        rows = [
            workload.row(stack.name, *task.result)
            for stack, workload, task in zip(topo.clients, workloads, tasks)
        ]
        return FleetResult(
            clients=clients,
            events_processed=sim.events_processed,
            servers=_server_rows(topo),
            rows=rows,
        )


def fleet_workload_for(spec: "FleetJobSpec", stack):
    """The Workload instance one client of a :class:`FleetJobSpec` runs.

    Module-level and spec-driven so shard workers instantiate exactly
    what the serial fleet instantiates; the per-stack ``chunk_bytes``
    override only applies to the default sequential writer, as it
    always has.
    """
    from ..bench.workloads import get_workload

    if spec.arrivals is not None:
        return get_workload(
            "open-loop", {"arrivals": spec.arrivals, "seed": spec.seed}
        )
    if spec.workload is not None:
        name, params = spec.workload
        return get_workload(name, dict(params))
    return get_workload(
        "sequential-write",
        {
            "file_bytes": spec.file_bytes,
            "chunk_bytes": stack.spec.chunk_bytes or spec.chunk_bytes,
            "do_fsync": spec.do_fsync,
        },
    )


def fleet_client_body(stack, offset_ns: int, chunk_bytes: int, file_bytes: int, do_fsync: bool):
    """Deprecated: the pre-registry fleet writer signature.

    Kept as a bit-identical shim over the registered sequential-write
    workload; new code should go through the registry
    (:func:`repro.bench.workloads.get_workload` +
    :func:`repro.bench.workloads.client_workload_body`).
    """
    from ..bench.workloads import client_workload_body, get_workload

    workload = get_workload(
        "sequential-write",
        {
            "file_bytes": file_bytes,
            "chunk_bytes": chunk_bytes,
            "do_fsync": do_fsync,
        },
    )
    return client_workload_body(stack, workload, offset_ns)


def server_rows(servers, switch) -> List[Dict[str, Any]]:
    """Per-server accounting rows from live server objects + switch."""
    rows: List[Dict[str, Any]] = []
    for server in servers:
        if server is None:
            continue
        downlink = switch.port(server.name).downlink
        rows.append(
            {
                "name": server.name,
                "bytes_received": server.bytes_received,
                "writes_handled": server.writes_handled,
                "commits_handled": server.commits_handled,
                "ingest_shares": server.ingest_shares(),
                "downlink_queue_ns": downlink.total_queue_ns,
                "downlink_peak_queue_ns": downlink.peak_queue_ns,
            }
        )
    return rows


def _server_rows(topo: Topology) -> List[Dict[str, Any]]:
    return server_rows(topo.servers, topo.switch)


# -- sweep integration --------------------------------------------------------


@dataclass(frozen=True)
class FleetJobSpec:
    """One fleet sweep point, expressed entirely as picklable specs.

    ``workload`` (a ``(name, ((key, value), ...))`` pair) swaps the
    default sequential writer for any registered workload; ``arrivals``
    (an :class:`~repro.traffic.spec.ArrivalSpec` or its dict form)
    runs every client open-loop, with ``seed`` keying the per-client
    arrival/size/mix streams.  Both ride the cache fingerprint like any
    other spec field.
    """

    clients: Sequence[ClientSpec]
    servers: Sequence[ServerSpec] = (ServerSpec(),)
    switch: SwitchSpec = SwitchSpec()
    file_bytes: int = 1 << 20
    chunk_bytes: int = 8192
    do_fsync: bool = True
    stagger_ns: int = 0
    time_limit_ns: Optional[int] = None
    workload: Optional[Tuple[str, Tuple[Tuple[str, Any], ...]]] = None
    arrivals: Any = None
    seed: int = 1

    def __post_init__(self):
        if self.workload is not None and self.arrivals is not None:
            raise ConfigError("give either workload or arrivals, not both")
        if self.workload is not None:
            name, params = self.workload
            if isinstance(params, dict):
                params = tuple(sorted(params.items()))
            object.__setattr__(self, "workload", (name, tuple(params)))
        if isinstance(self.arrivals, dict):
            from ..traffic.spec import ArrivalSpec

            object.__setattr__(
                self, "arrivals", ArrivalSpec.from_dict(self.arrivals)
            )

    @staticmethod
    def homogeneous(
        count: int,
        target: str = "netapp",
        client: Union[str, Any] = "stock",
        file_bytes: int = 1 << 20,
        **kwargs: Any,
    ) -> "FleetJobSpec":
        """``count`` identical clients against one default server."""
        return FleetJobSpec(
            clients=ClientSpec(client=client).replicate(count),
            servers=(ServerSpec(kind=target),),
            file_bytes=file_bytes,
            **kwargs,
        )

    def fingerprint(self, version: Optional[str] = None) -> str:
        return fingerprint(self, version=version)


@dataclass
class FleetPointResult:
    """The reduced outcome of one :class:`FleetJobSpec`.

    Carries per-client timing triples, p99s, and a checksum of each
    latency trace (not the full series — a 32-client point would drag
    hundreds of thousands of integers through the cache), plus the
    fleet aggregates and per-server fairness rows.
    """

    clients: List[Dict[str, Any]]
    servers: List[Dict[str, Any]]
    events_processed: int

    PAYLOAD_KIND = "fleet"

    @property
    def count(self) -> int:
        return len(self.clients)

    @property
    def total_bytes(self) -> int:
        return sum(c["file_bytes"] for c in self.clients)

    @property
    def span_ns(self) -> int:
        if not self.clients:
            return 0
        return max(c["end_ns"] for c in self.clients) - min(
            c["start_ns"] for c in self.clients
        )

    @property
    def aggregate_bytes_per_sec(self) -> float:
        return throughput(self.total_bytes, self.span_ns)

    @property
    def aggregate_mbps(self) -> float:
        return to_mbps(self.aggregate_bytes_per_sec)

    @property
    def fairness(self) -> float:
        return jain_index(
            [
                throughput(c["file_bytes"], c["write_elapsed_ns"])
                for c in self.clients
            ]
        )

    def client_mbps(self) -> List[float]:
        return [
            to_mbps(throughput(c["file_bytes"], c["write_elapsed_ns"]))
            for c in self.clients
        ]

    def client_p99_us(self) -> List[float]:
        return [to_us(c["p99_ns"]) for c in self.clients]

    def to_payload(self) -> Dict[str, Any]:
        return {
            "__kind__": self.PAYLOAD_KIND,
            "clients": self.clients,
            "servers": self.servers,
            "events_processed": self.events_processed,
        }

    @classmethod
    def from_payload(cls, payload: Dict[str, Any]) -> "FleetPointResult":
        return cls(
            clients=payload["clients"],
            servers=payload["servers"],
            events_processed=payload["events_processed"],
        )

    def run_fingerprint(self) -> str:
        """Content hash of the whole *simulated* outcome — two runs of
        the same spec must produce the same digest (the determinism
        contract).

        ``events_processed`` is excluded: it counts engine dispatches,
        not simulated behaviour, and a sharded run's window bookkeeping
        legitimately dispatches a different number of callbacks while
        producing bit-identical timings, traces and server accounting.
        """
        payload = self.to_payload()
        payload.pop("events_processed", None)
        blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode()).hexdigest()


def _trace_sha(result: BenchmarkResult) -> str:
    blob = ",".join(str(v) for v in result.trace.latencies_ns)
    return hashlib.sha256(blob.encode()).hexdigest()


def client_row(name: str, start_ns: int, end_ns: int, result: BenchmarkResult) -> Dict[str, Any]:
    """One client's reduced row — shard workers build these locally so
    the full latency trace never crosses the process boundary."""
    return {
        "name": name,
        "file_bytes": result.file_bytes,
        "chunk_bytes": result.chunk_bytes,
        "start_ns": start_ns,
        "end_ns": end_ns,
        "write_elapsed_ns": result.write_elapsed_ns,
        "flush_elapsed_ns": result.flush_elapsed_ns,
        "close_elapsed_ns": result.close_elapsed_ns,
        "p99_ns": result.trace.percentile_ns(99),
        "calls": len(result.trace),
        "trace_sha": _trace_sha(result),
    }


def reduce_fleet(fleet: FleetResult) -> FleetPointResult:
    """Reduce a live :class:`FleetResult` to its cacheable point form."""
    if fleet.rows is not None:
        clients = fleet.rows
    else:
        clients = [
            client_row(c.name, c.start_ns, c.end_ns, c.result)
            for c in fleet.clients
        ]
    return FleetPointResult(
        clients=clients,
        servers=fleet.servers,
        events_processed=fleet.events_processed,
    )


def run_fleet_job(
    spec: FleetJobSpec, shards: int = 1, transport: str = "process"
) -> FleetPointResult:
    """Build one pristine topology, run the fleet, reduce the result.

    Module-level so process-pool workers can unpickle a reference to it.
    ``shards`` is an *execution* argument, deliberately not part of the
    spec: a sharded run must reduce to the same point (and the same
    :meth:`FleetPointResult.run_fingerprint`) as ``shards=1``, so it
    must not perturb the spec's cache fingerprint either.
    """
    if shards > 1:
        from ..parallel.des import run_sharded_fleet

        return run_sharded_fleet(spec, shards=shards, transport=transport).point
    topo = Topology(
        clients=spec.clients, servers=spec.servers, switch=spec.switch
    )
    workload = FleetWorkload(
        topo,
        spec.file_bytes,
        chunk_bytes=spec.chunk_bytes,
        do_fsync=spec.do_fsync,
        stagger_ns=spec.stagger_ns,
        workload=spec.workload,
        arrivals=spec.arrivals,
        seed=spec.seed,
    )
    return reduce_fleet(workload.run(time_limit_ns=spec.time_limit_ns))


# Register with the sweep executor: FleetJobSpec points fan out and
# cache exactly like single-client JobSpecs.
from ..parallel.executor import register_job_type  # noqa: E402

register_job_type(
    FleetJobSpec,
    run_fleet_job,
    FleetPointResult.PAYLOAD_KIND,
    FleetPointResult.from_payload,
)
