"""The stock 2.4.4 index: a sorted per-inode list of write requests.

``_nfs_find_request`` walks a list "maintained in order of increasing
page offset" (§3.4).  A sequential writer looks for a page that is never
there, so every search walks the *entire* list before the new request is
appended at the tail — the O(n) behaviour behind Fig. 3's growing
latency.

The simulated cost is exact list-walk accounting: the number of nodes a
singly-walked sorted list would visit (the request's rank + 1).  To keep
wall-clock time reasonable at 100k+ requests, ranks come from a Fenwick
tree rather than an actual O(n) walk — the *charged* cost is identical.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from ..errors import SimulationError
from .request import NfsPageRequest
from .request_index import RequestIndex

__all__ = ["SortedListIndex", "Fenwick"]


class Fenwick:
    """Binary indexed tree over page indices, grown on demand."""

    def __init__(self, size: int = 1024):
        self._size = size
        self._tree = [0] * (size + 1)
        self.count = 0

    def _grow(self, needed: int) -> None:
        new_size = self._size
        while new_size <= needed:
            new_size *= 2
        old_counts = self.counts()
        self._size = new_size
        self._tree = [0] * (new_size + 1)
        self.count = 0
        for index in old_counts:
            self.add(index)

    def counts(self):
        """Occupied indices (ascending) — O(n log n), used on growth."""
        return [i for i in range(self._size) if self.contains(i)]

    def contains(self, index: int) -> bool:
        return self.rank(index + 1) - self.rank(index) > 0

    def add(self, index: int) -> None:
        if index >= self._size:
            self._grow(index)
        i = index + 1
        while i <= self._size:
            self._tree[i] += 1
            i += i & (-i)
        self.count += 1

    def discard(self, index: int) -> None:
        if index >= self._size or not self.contains(index):
            raise SimulationError(f"fenwick: removing absent index {index}")
        i = index + 1
        while i <= self._size:
            self._tree[i] -= 1
            i += i & (-i)
        self.count -= 1

    def rank(self, index: int) -> int:
        """Number of occupied indices strictly below ``index``."""
        if index <= 0:
            return 0
        i = min(index, self._size)
        total = 0
        while i > 0:
            total += self._tree[i]
            i -= i & (-i)
        return total


class _InodeList:
    """One inode's sorted request list."""

    def __init__(self) -> None:
        self.by_page: Dict[int, NfsPageRequest] = {}
        self.ranks = Fenwick()


class SortedListIndex(RequestIndex):
    """Per-inode sorted lists, with exact walk-cost accounting."""

    kind = "sorted-list"

    def __init__(self, node_cost_ns: int):
        self.node_cost_ns = node_cost_ns
        self._inodes: Dict[int, _InodeList] = {}
        self.searches = 0
        self.nodes_walked = 0

    def _inode(self, fileid: int) -> _InodeList:
        lst = self._inodes.get(fileid)
        if lst is None:
            lst = _InodeList()
            self._inodes[fileid] = lst
        return lst

    def peek(self, fileid: int, page_index: int) -> Optional[NfsPageRequest]:
        lst = self._inodes.get(fileid)
        if lst is None:
            return None
        return lst.by_page.get(page_index)

    def _walk_length(self, lst: _InodeList, page_index: int) -> int:
        """Nodes a sorted singly-linked-list walk visits for this page.

        The walk stops at the first node with ``page >= page_index``; a
        miss past the tail (the sequential-writer case) visits every
        node.
        """
        below = lst.ranks.rank(page_index)
        if page_index in lst.by_page or below < lst.ranks.count:
            return below + 1
        return lst.ranks.count  # ran off the tail

    def find(self, fileid: int, page_index: int) -> Tuple[Optional[NfsPageRequest], int]:
        lst = self._inode(fileid)
        visited = self._walk_length(lst, page_index)
        self.searches += 1
        self.nodes_walked += visited
        return lst.by_page.get(page_index), visited * self.node_cost_ns

    def insert(self, request: NfsPageRequest) -> int:
        lst = self._inode(request.fileid)
        if request.page_index in lst.by_page:
            raise SimulationError(
                f"duplicate request for page {request.page_index} "
                f"of file {request.fileid}"
            )
        # Insertion walks to the right spot: same cost as a missing find.
        visited = self._walk_length(lst, request.page_index)
        lst.by_page[request.page_index] = request
        lst.ranks.add(request.page_index)
        self.nodes_walked += visited
        if self.sanitizer is not None:
            self.sanitizer.on_index_mutation(
                self, "insert", request.fileid, request.page_index
            )
        return visited * self.node_cost_ns

    def remove(self, request: NfsPageRequest) -> int:
        lst = self._inodes.get(request.fileid)
        if lst is None or lst.by_page.get(request.page_index) is not request:
            raise SimulationError(
                f"removing unindexed request page {request.page_index}"
            )
        del lst.by_page[request.page_index]
        lst.ranks.discard(request.page_index)
        if self.sanitizer is not None:
            self.sanitizer.on_index_mutation(
                self, "remove", request.fileid, request.page_index
            )
        # Doubly-linked list unlink via the request pointer: O(1).
        return self.node_cost_ns

    def __len__(self) -> int:
        return sum(len(lst.by_page) for lst in self._inodes.values())
