"""The paper's fix: a hash table over outstanding write requests.

"Our modification inserts requests into a hash table based on the
requesting inode and the page offset of the request.  All requests to
the same page in the same inode are kept in the same hash bucket, so any
overlapping requests are detected by searching all the requests in a
single bucket" (§3.4).  Memory cost: eight bytes per request and eight
per inode (two pointers), tracked for the record.

The bucket array is real — cost is the hash computation plus a walk of
the actual bucket population, so pathological bucket collisions would
show up honestly.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..errors import SimulationError
from .request import NfsPageRequest
from .request_index import RequestIndex

__all__ = ["HashTableIndex"]

#: Bytes of linkage added per request / per inode by the patch (§3.4).
BYTES_PER_REQUEST = 8
BYTES_PER_INODE = 8


class HashTableIndex(RequestIndex):
    """Global hash keyed on (inode, page index)."""

    kind = "hash-table"

    def __init__(self, nbuckets: int, lookup_cost_ns: int, node_cost_ns: int):
        if nbuckets < 1:
            raise SimulationError("hash table needs at least one bucket")
        self.nbuckets = nbuckets
        self.lookup_cost_ns = lookup_cost_ns
        self.node_cost_ns = node_cost_ns
        self._buckets: List[Dict[Tuple[int, int], NfsPageRequest]] = [
            {} for _ in range(nbuckets)
        ]
        self._count = 0
        self._inodes_seen: set = set()
        self.searches = 0
        self.nodes_walked = 0

    def _bucket_of(self, fileid: int, page_index: int) -> int:
        # Deterministic mix of inode and page offset (ints hash stably).
        return (fileid * 0x9E3779B1 + page_index) % self.nbuckets

    def peek(self, fileid: int, page_index: int) -> Optional[NfsPageRequest]:
        bucket = self._buckets[self._bucket_of(fileid, page_index)]
        return bucket.get((fileid, page_index))

    def find(self, fileid: int, page_index: int) -> Tuple[Optional[NfsPageRequest], int]:
        bucket = self._buckets[self._bucket_of(fileid, page_index)]
        visited = len(bucket)
        self.searches += 1
        self.nodes_walked += visited
        cost = self.lookup_cost_ns + visited * self.node_cost_ns
        return bucket.get((fileid, page_index)), cost

    def insert(self, request: NfsPageRequest) -> int:
        key = (request.fileid, request.page_index)
        bucket = self._buckets[self._bucket_of(*key)]
        if key in bucket:
            raise SimulationError(f"duplicate request for {key}")
        bucket[key] = request
        self._count += 1
        self._inodes_seen.add(request.fileid)
        if self.sanitizer is not None:
            self.sanitizer.on_index_mutation(
                self, "insert", request.fileid, request.page_index
            )
        return self.lookup_cost_ns

    def remove(self, request: NfsPageRequest) -> int:
        key = (request.fileid, request.page_index)
        bucket = self._buckets[self._bucket_of(*key)]
        if bucket.get(key) is not request:
            raise SimulationError(f"removing unindexed request {key}")
        del bucket[key]
        self._count -= 1
        if self.sanitizer is not None:
            self.sanitizer.on_index_mutation(
                self, "remove", request.fileid, request.page_index
            )
        return self.lookup_cost_ns

    def memory_overhead_bytes(self) -> int:
        """The patch's extra memory, as quantified in §3.4."""
        return (
            self._count * BYTES_PER_REQUEST
            + len(self._inodes_seen) * BYTES_PER_INODE
        )

    def max_bucket_depth(self) -> int:
        return max(len(b) for b in self._buckets)

    def __len__(self) -> int:
        return self._count
