"""An open NFS file, pluggable into the VFS layer."""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..errors import EioError
from ..kernel.vfs import VfsFile

if TYPE_CHECKING:  # pragma: no cover
    from .client import NfsClient
    from .inode import NfsInode

__all__ = ["NfsFile"]


class NfsFile(VfsFile):
    """VFS hooks bound to an NFS inode."""

    def __init__(self, client: "NfsClient", inode: "NfsInode", sync: bool = False):
        super().__init__(fileid=inode.fileid, name=inode.name)
        self.client = client
        self.inode = inode
        #: O_SYNC: every write waits for server-stable data.
        self.sync = sync

    # The page cache is per-inode: it survives close/re-open (subject to
    # close-to-open revalidation in NfsClient.open_existing).
    @property
    def cached_pages(self):
        return self.inode.cached_pages

    @property
    def _read_pending(self):
        return self.inode.read_pending

    def _raise_pending_error(self) -> None:
        """Surface a latched async-write failure (Linux reports a failed
        background write at the next write/fsync/close on the file)."""
        err = self.inode.consume_error()
        if err is not None:
            raise EioError(f"{self.name}: deferred write error ({err})")

    def commit_write(self, page_index: int, offset_in_page: int, nbytes: int):
        self._raise_pending_error()
        yield from self.client.writepath.nfs_updatepage(
            self.inode, page_index, offset_in_page, nbytes
        )
        self.cached_pages.add(page_index)
        if self.sync:
            from ..nfs3 import Stable

            yield from self.client.flush_writes(
                self.inode, stable=Stable.FILE_SYNC, reason="osync"
            )
            self._raise_pending_error()

    # -- reads ---------------------------------------------------------------

    def has_page(self, page_index: int) -> bool:
        if page_index in self.cached_pages:
            return True
        # Dirty data not yet written back is readable from the cache too.
        return self.client.index.peek(self.inode.fileid, page_index) is not None

    def readpage(self, page_index: int):
        pending = self._read_pending.get(page_index)
        if pending is not None:
            yield pending  # someone is already fetching this range
            self._raise_pending_error()
            return
        yield from self.client.fetch_pages(self, page_index, wait=True)
        self._raise_pending_error()
        # Sequential read-ahead: fire-and-forget fetches behind the fault.
        pages_per_rpc = max(1, self.client.mount.rsize // 4096)
        ra_end = page_index + pages_per_rpc + self.client.mount.readahead_pages
        next_start = page_index + pages_per_rpc
        while next_start < ra_end:
            if not self.has_page(next_start) and next_start not in self._read_pending:
                started = yield from self.client.fetch_pages(
                    self, next_start, wait=False
                )
                if not started:
                    break  # past EOF
            next_start += pages_per_rpc

    def fsync(self):
        yield from self.client.flush_inode(self.inode)
        self._raise_pending_error()

    def release(self):
        # NFS close-to-open consistency: flush completely on last close.
        yield from self.client.flush_inode(self.inode)
        self._raise_pending_error()
