"""The Linux NFS client model — the paper's subject."""

from .client import NfsClient, NfsClientStats
from .coalesce import contiguous_run_length, group_extent, take_group
from .file import NfsFile
from .flush import FlushPolicy, LazyFlushPolicy, StockFlushPolicy
from .flushd import NfsFlushd
from .inode import NfsInode
from .request import NfsPageRequest, RequestState
from .request_hash import HashTableIndex
from .request_index import RequestIndex
from .request_list import SortedListIndex
from .variants import VARIANT_ORDER, VARIANTS, variant_config
from .writepath import WritePath

__all__ = [
    "NfsClient",
    "NfsClientStats",
    "NfsFile",
    "NfsInode",
    "NfsPageRequest",
    "RequestState",
    "RequestIndex",
    "SortedListIndex",
    "HashTableIndex",
    "FlushPolicy",
    "StockFlushPolicy",
    "LazyFlushPolicy",
    "NfsFlushd",
    "WritePath",
    "take_group",
    "group_extent",
    "contiguous_run_length",
    "VARIANTS",
    "VARIANT_ORDER",
    "variant_config",
]
