"""The paper's named client builds.

The paper improves the 2.4.4 client in three cumulative steps, each
isolated here as a configuration:

========== ================= ============ ======================
variant    threshold flushes index        BKL around sock_sendmsg
========== ================= ============ ======================
stock      yes (192/256)     sorted list  held
noflush    no                sorted list  held
hashtable  no                hash table   held
nolock     no                hash table   released
========== ================= ============ ======================

``enhanced`` is an alias for ``nolock`` — the fully patched client of
Figs. 6 and 7.
"""

from __future__ import annotations

from typing import Dict

from ..config import NfsClientConfig
from ..errors import ConfigError

__all__ = ["VARIANTS", "variant_config", "VARIANT_ORDER"]

VARIANTS: Dict[str, NfsClientConfig] = {
    "stock": NfsClientConfig(
        eager_flush_limits=True, hashtable_index=False, release_bkl_for_send=False
    ),
    "noflush": NfsClientConfig(
        eager_flush_limits=False, hashtable_index=False, release_bkl_for_send=False
    ),
    "hashtable": NfsClientConfig(
        eager_flush_limits=False, hashtable_index=True, release_bkl_for_send=False
    ),
    "nolock": NfsClientConfig(
        eager_flush_limits=False, hashtable_index=True, release_bkl_for_send=True
    ),
}
VARIANTS["enhanced"] = VARIANTS["nolock"]

#: Paper-order progression for sweeps and reports.
VARIANT_ORDER = ["stock", "noflush", "hashtable", "nolock"]


def variant_config(name: str) -> NfsClientConfig:
    """Look up a named variant; raises ConfigError on unknown names."""
    try:
        return VARIANTS[name]
    except KeyError:
        known = ", ".join(sorted(VARIANTS))
        raise ConfigError(f"unknown client variant {name!r} (known: {known})") from None
