"""The NFS client facade: wiring, RPC generation, completion paths.

One :class:`NfsClient` models one NFSv3 mount on the client machine:
the Big Kernel Lock, the request index (stock list or the paper's hash
table), the flush policy, ``nfs_flushd``, and the RPC transport with its
rpciod.  The behavioural switches of
:class:`repro.config.NfsClientConfig` select the paper's client variants
(see :mod:`repro.nfsclient.variants`).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional

from ..config import MountConfig, NfsClientConfig
from ..errors import ProtocolError
from ..kernel.bkl import BigKernelLock, SendUnlockedPolicy, StockLockPolicy
from ..kernel.pagecache import PageCache
from ..net.host import Host
from ..nfs3 import (
    CommitArgs,
    CommitResult,
    CreateArgs,
    CreateResult,
    LookupArgs,
    LookupResult,
    ReadArgs,
    ReadResult,
    Stable,
    WriteArgs,
    WriteResult,
    commit_call_size,
    read_call_size,
    write_call_size,
)
from ..obs.core import DISABLED
from ..rpc import RpcCall, UdpTransport
from ..sim import PRIO_KERNEL, Event, WaitQueue
from ..units import PAGE_SIZE
from .coalesce import group_extent, observe_group
from .file import NfsFile
from .flush import LazyFlushPolicy, StockFlushPolicy
from .flushd import NfsFlushd
from .inode import NfsInode
from .request import NfsPageRequest
from .request_hash import HashTableIndex
from .request_list import SortedListIndex
from .writepath import WritePath

__all__ = ["NfsClient", "NfsClientStats"]

NFS_PORT = 2049


class NfsClientStats:
    """Counters experiments and tests assert on."""

    __slots__ = (
        "writes_sent",
        "bytes_sent",
        "commits_sent",
        "reads_sent",
        "bytes_fetched",
        "soft_flushes",
        "hard_sleeps",
        "explicit_flushes",
        "coalesced_updates",
        "page_waits",
        "bytes_acked_stable",
        "commit_verf_mismatches",
        "write_failures",
        "commit_failures",
        "read_failures",
    )

    def __init__(self) -> None:
        self.writes_sent = 0
        self.bytes_sent = 0
        self.commits_sent = 0
        self.reads_sent = 0
        self.bytes_fetched = 0
        self.soft_flushes = 0
        self.hard_sleeps = 0
        self.explicit_flushes = 0
        self.coalesced_updates = 0
        self.page_waits = 0
        #: Bytes the server has acknowledged as durable (FILE_SYNC write
        #: or a verf-matching COMMIT) — the "no acknowledged-stable data
        #: lost" invariant audits this against server state.
        self.bytes_acked_stable = 0
        #: COMMIT replies whose verifier didn't match the writes' — the
        #: server rebooted, and the affected pages were re-dirtied.
        self.commit_verf_mismatches = 0
        #: WRITE RPCs failed by the transport (soft-mount major timeout).
        self.write_failures = 0
        self.commit_failures = 0
        self.read_failures = 0


class NfsClient:
    """One NFSv3 mount."""

    def __init__(
        self,
        host: Host,
        pagecache: PageCache,
        server: str,
        mount: Optional[MountConfig] = None,
        behavior: Optional[NfsClientConfig] = None,
        server_port: int = NFS_PORT,
        client_port: int = 700,
        bkl: Optional[BigKernelLock] = None,
    ):
        self.host = host
        self.sim = host.sim
        self.pagecache = pagecache
        self.mount = mount or MountConfig()
        self.behavior = behavior or NfsClientConfig()
        # The BKL is kernel-wide: mounts on the same machine must share
        # one (pass it in), which is exactly why the paper's future work
        # wants the RPC layer off the global lock (§3.5).
        self.bkl = bkl or BigKernelLock(self.sim)
        if self.behavior.release_bkl_for_send:
            lock_policy = SendUnlockedPolicy(self.bkl)
        else:
            lock_policy = StockLockPolicy(self.bkl)
        self.xprt = UdpTransport(
            host,
            host.udp.socket(client_port),
            server,
            server_port,
            slots=self.behavior.rpc_slots,
            timeo_ns=self.mount.timeo_ns,
            lock_policy=lock_policy,
            name=f"{host.name}-xprt",
            retrans=self.mount.retrans,
            soft=self.mount.soft,
            adaptive_timeo=self.mount.adaptive_timeo,
            jukebox_delay_ns=self.mount.jukebox_delay_ns,
        )
        costs = host.costs
        if self.behavior.hashtable_index:
            self.index = HashTableIndex(
                self.behavior.hash_buckets,
                lookup_cost_ns=costs.hash_lookup,
                node_cost_ns=costs.hash_node_visit,
            )
        else:
            self.index = SortedListIndex(node_cost_ns=costs.list_node_visit)
        if self.behavior.eager_flush_limits:
            self.flush_policy = StockFlushPolicy(
                self,
                soft=self.behavior.max_request_soft,
                hard=self.behavior.max_request_hard,
            )
        else:
            self.flush_policy = LazyFlushPolicy()
        self.behavior_single_search = self.behavior.single_search
        self.writepath = WritePath(self)
        #: Requests not yet stable (dirty + in flight + unstable).
        self.live_requests = 0
        #: Requests in the write-back pipeline (dirty + in flight) —
        #: the mount-wide count MAX_REQUEST_HARD compares against.
        self.writeback_count = 0
        self.hard_waitq = WaitQueue(self.sim, f"{host.name}-hardlimit")
        self.stats = NfsClientStats()
        self._inodes: Dict[int, NfsInode] = {}
        self._next_fileid = 1
        self.flushd = NfsFlushd(self)
        #: optional sanitizer harness; when set, new inodes are watched
        #: (see repro.analysis.sanitize.runtime).
        self.sanitizer = None
        #: Observability sink (repro.obs); passive, defaults disabled.
        self.obs = DISABLED

    # -- namespace ---------------------------------------------------------

    @property
    def pages_per_rpc(self) -> int:
        return max(1, self.mount.wsize // PAGE_SIZE)

    def inodes(self) -> Iterable[NfsInode]:
        return list(self._inodes.values())

    def inode(self, fileid: int) -> NfsInode:
        return self._inodes[fileid]

    def open_new(self, name: str, sync: bool = False):
        """Generator: CREATE a fresh file on the server, return an NfsFile.

        Writing into a fresh file keeps the benchmark on the pure write
        path — no read-modify-write of existing data (§2.3).  With
        ``sync`` the file behaves as if opened O_SYNC: every ``write()``
        returns only once the data is stable on the server.
        """
        call = RpcCall(
            xid=self.xprt.next_xid(),
            prog="nfs3",
            proc="CREATE",
            args=CreateArgs(name),
            size=200,
        )
        reply = yield from self.xprt.call_and_wait(call)
        result = reply.result
        if not isinstance(result, CreateResult):
            raise ProtocolError(f"CREATE returned {result!r}")
        inode = NfsInode(self.sim, result.fileid, name)
        self._inodes[result.fileid] = inode
        if self.sanitizer is not None:
            self.sanitizer.watch_inode(inode)
        return NfsFile(self, inode, sync=sync)

    def open_existing(self, name: str, sync: bool = False):
        """Generator: open a file already on the server (LOOKUP).

        Implements close-to-open consistency: the LOOKUP's change token
        is compared with the one cached at the previous open, and the
        client's cached pages are invalidated when they differ.  (Our
        own writes also bump the token, so a re-open after writing
        conservatively re-reads — real clients track post-op attributes
        to avoid that.)
        """
        call = RpcCall(
            xid=self.xprt.next_xid(),
            prog="nfs3",
            proc="LOOKUP",
            args=LookupArgs(name),
            size=180,
        )
        reply = yield from self.xprt.call_and_wait(call)
        result = reply.result
        if not isinstance(result, LookupResult):
            raise ProtocolError(f"LOOKUP returned {result!r}")
        inode = self._inodes.get(result.fileid)
        if inode is None:
            inode = NfsInode(self.sim, result.fileid, name)
            inode.server_change_id = result.change_id
            self._inodes[result.fileid] = inode
            if self.sanitizer is not None:
                self.sanitizer.watch_inode(inode)
        elif inode.server_change_id != result.change_id:
            inode.invalidate_cache()
            inode.server_change_id = result.change_id
        file = NfsFile(self, inode, sync=sync)
        file.size = result.size
        return file

    # -- WRITE ------------------------------------------------------------------

    def submit_write(
        self,
        inode: NfsInode,
        group: List[NfsPageRequest],
        stable: Optional[Stable] = None,
    ):
        """Generator: turn a contiguous request group into an async WRITE.

        Runs in the scheduling context (writer's nfs_strategy, a flush,
        or nfs_flushd) — the transport decides whether the wire send
        happens here or in rpciod.  NFSv2 has no unstable writes: every
        WRITE is forced FILE_SYNC regardless of ``stable``.
        """
        if self.mount.nfs_version == 2:
            stable = Stable.FILE_SYNC
        elif stable is None:
            stable = Stable.UNSTABLE
        offset, count = group_extent(group)
        now = self.sim.now
        for req in group:
            inode.note_scheduled(req, now)
        yield from self.host.cpus.execute(
            self.host.costs.rpc_task_setup, label="rpc_task_setup",
            priority=PRIO_KERNEL,
        )
        call = RpcCall(
            xid=self.xprt.next_xid(),
            prog="nfs3" if self.mount.nfs_version == 3 else "nfs2",
            proc="WRITE",
            args=WriteArgs(inode.fileid, offset, count, stable),
            size=write_call_size(count),
        )
        self.stats.writes_sent += 1
        self.stats.bytes_sent += count
        obs = self.obs
        if obs.enabled:
            # Parent the RPC on the span that dirtied the group's first
            # page; flush daemons run outside any syscall, so a missing
            # page span falls back to the current task's root span.
            parent = group[0].span_id or obs.task_span()
            observe_group(obs, group, parent=parent)
            call.span_id = obs.span_begin(
                "rpc", "WRITE", parent=parent, xid=call.xid,
                bytes=count, pages=len(group), stable=stable.name,
            )

        def on_complete(reply):
            return self._write_done(inode, group, reply)

        def on_error(reply):
            return self._write_failed(inode, group, reply)

        yield from self.xprt.submit(call, on_complete, on_error)

    def _write_done(self, inode: NfsInode, group: List[NfsPageRequest], reply):
        """Generator: WRITE completion (rpciod context, BKL critical)."""
        result = reply.result
        if not isinstance(result, WriteResult):
            raise ProtocolError(f"WRITE returned {result!r}")
        cpus = self.host.cpus
        costs = self.host.costs
        now = self.sim.now
        # Post-op attributes keep the attribute cache coherent with our
        # own writes (no self-inflicted invalidation at the next open).
        if result.change_id > inode.server_change_id:
            inode.server_change_id = result.change_id
        for req in group:
            yield from cpus.execute(
                costs.request_complete, label="nfs_write_done", priority=PRIO_KERNEL
            )
            if result.committed >= Stable.DATA_SYNC:
                remove_cost = self.index.remove(req)
                yield from cpus.execute(
                    remove_cost, label="nfs_request_remove", priority=PRIO_KERNEL
                )
                inode.note_write_done(req, now)
                self.live_requests -= 1
                self.stats.bytes_acked_stable += req.nbytes
            else:
                req.verf = result.verf
                inode.note_unstable(req)
                self.obs.series_gauge("nfs/unstable_bytes", inode.unstable_bytes)
            self._writeback_retired()
            if result.committed >= Stable.DATA_SYNC:
                self.pagecache.uncharge(PAGE_SIZE)
        inode.waitq.wake_all()

    def _write_failed(self, inode: NfsInode, group: List[NfsPageRequest], reply):
        """Generator: WRITE failed for good (soft-mount major timeout).

        Linux async-write error semantics: drop the pages, latch EIO on
        the inode, and report it at the next write/fsync/close.
        """
        cpus = self.host.cpus
        costs = self.host.costs
        now = self.sim.now
        for req in group:
            remove_cost = self.index.remove(req)
            yield from cpus.execute(
                remove_cost, label="nfs_request_remove", priority=PRIO_KERNEL
            )
            inode.note_write_done(req, now)
            self.live_requests -= 1
            self._writeback_retired()
            self.pagecache.uncharge(PAGE_SIZE)
        self.stats.write_failures += 1
        inode.pending_error = "EIO"
        inode.waitq.wake_all()

    # -- READ ----------------------------------------------------------------------

    def fetch_pages(self, file, start_page: int, wait: bool = True):
        """Generator: fetch one rsize range into the client cache.

        Returns False (without I/O) when ``start_page`` is past EOF.
        With ``wait=False`` the READ proceeds asynchronously — the
        read-ahead path.
        """
        from ..units import PAGE_SIZE as _PAGE

        start_byte = start_page * _PAGE
        if start_byte >= file.size:
            return False
        count = min(self.mount.rsize, file.size - start_byte)
        npages = -(-count // _PAGE)
        done = Event(self.sim)
        pages = range(start_page, start_page + npages)
        for page in pages:
            file._read_pending[page] = done
        call = RpcCall(
            xid=self.xprt.next_xid(),
            prog="nfs3" if self.mount.nfs_version == 3 else "nfs2",
            proc="READ",
            args=ReadArgs(file.inode.fileid, start_byte, count),
            size=read_call_size(),
        )
        self.stats.reads_sent += 1
        self.stats.bytes_fetched += count

        def on_complete(reply):
            return self._read_done(file, pages, done, reply)

        def on_error(reply):
            return self._read_failed(file, pages, done, reply)

        pending = yield from self.xprt.submit(call, on_complete, on_error)
        if wait:
            yield pending.completion
        return True

    def _read_done(self, file, pages, done: Event, reply):
        """Generator: READ completion (rpciod context, BKL critical)."""
        result = reply.result
        if not isinstance(result, ReadResult):
            raise ProtocolError(f"READ returned {result!r}")
        cpus = self.host.cpus
        for page in pages:
            yield from cpus.execute(
                self.host.costs.request_complete,
                label="nfs_readpage_result",
                priority=PRIO_KERNEL,
            )
            file.cached_pages.add(page)
            file._read_pending.pop(page, None)
        if not done.fired:
            done.trigger()

    def _read_failed(self, file, pages, done: Event, reply):
        """Generator: READ failed for good (soft-mount major timeout)."""
        for page in pages:
            file._read_pending.pop(page, None)
        self.stats.read_failures += 1
        file.inode.pending_error = "EIO"
        if not done.fired:
            done.trigger()
        return
        yield  # pragma: no cover - generator marker

    # -- COMMIT -----------------------------------------------------------------

    def commit_inode(self, inode: NfsInode, wait: bool = True):
        """Generator: COMMIT the inode's unstable data.

        With ``wait``, blocks until commit completion (fsync/close
        semantics); otherwise just launches it (flushd's memory-pressure
        behaviour).  Concurrent callers piggyback on the in-flight
        commit.
        """
        if inode.commit_in_flight:
            if wait:
                yield from inode.waitq.wait_until(
                    lambda: not inode.commit_in_flight
                )
            return
        if not inode.unstable:
            return
        inode.commit_in_flight = True
        snapshot = inode.unstable
        inode.unstable = []
        call = RpcCall(
            xid=self.xprt.next_xid(),
            prog="nfs3",
            proc="COMMIT",
            args=CommitArgs(inode.fileid),
            size=commit_call_size(),
        )
        self.stats.commits_sent += 1
        obs = self.obs
        if obs.enabled:
            call.span_id = obs.span_begin(
                "rpc", "COMMIT",
                parent=snapshot[0].span_id or obs.task_span(),
                xid=call.xid, pages=len(snapshot),
            )

        def on_complete(reply):
            return self._commit_done(inode, snapshot, reply)

        def on_error(reply):
            return self._commit_failed(inode, snapshot, reply)

        pending = yield from self.xprt.submit(call, on_complete, on_error)
        if wait:
            yield pending.completion

    def _commit_done(self, inode: NfsInode, snapshot: List[NfsPageRequest], reply):
        """Generator: COMMIT completion (rpciod context, BKL critical)."""
        result = reply.result
        if not isinstance(result, CommitResult):
            raise ProtocolError(f"COMMIT returned {result!r}")
        cpus = self.host.cpus
        costs = self.host.costs
        now = self.sim.now
        for req in snapshot:
            yield from cpus.execute(
                costs.request_complete, label="nfs_commit_done", priority=PRIO_KERNEL
            )
            if req.verf is not None and req.verf != result.verf:
                # The server rebooted between the UNSTABLE write and this
                # COMMIT: the data may be gone.  Re-dirty the page and
                # write it again (nfs_commit_done's resend path).
                inode.note_redirty(req)
                self.writeback_count += 1
                self.stats.commit_verf_mismatches += 1
                continue
            remove_cost = self.index.remove(req)
            yield from cpus.execute(
                remove_cost, label="nfs_request_remove", priority=PRIO_KERNEL
            )
            inode.note_committed(req, now)
            self.live_requests -= 1
            self.stats.bytes_acked_stable += req.nbytes
            self.pagecache.uncharge(PAGE_SIZE)
        self.obs.series_gauge("nfs/unstable_bytes", inode.unstable_bytes)
        inode.commit_in_flight = False
        inode.waitq.wake_all()

    def _commit_failed(self, inode: NfsInode, snapshot: List[NfsPageRequest], reply):
        """Generator: COMMIT failed for good (soft-mount major timeout)."""
        cpus = self.host.cpus
        now = self.sim.now
        for req in snapshot:
            remove_cost = self.index.remove(req)
            yield from cpus.execute(
                remove_cost, label="nfs_request_remove", priority=PRIO_KERNEL
            )
            inode.note_committed(req, now)
            self.live_requests -= 1
            self.pagecache.uncharge(PAGE_SIZE)
        self.stats.commit_failures += 1
        inode.commit_in_flight = False
        inode.pending_error = "EIO"
        inode.waitq.wake_all()

    # -- flush (fsync/close/threshold) ------------------------------------------

    def flush_writes(
        self,
        inode: NfsInode,
        stable: Optional[Stable] = None,
        reason: str = "explicit",
    ):
        """Generator: schedule all dirty requests, wait for WRITE replies.

        The MAX_REQUEST_SOFT path (§3.3): the writer "schedules all
        pending writes for that inode and waits for their completion".
        Write-back completion suffices — UNSTABLE data may continue to
        await COMMIT without counting against the thresholds.  The
        O_SYNC path passes ``stable=FILE_SYNC`` to force durability.
        """
        if inode.dirty:
            yield from self.bkl.hold(
                "nfs_flush",
                self.writepath.schedule_all(inode, stable=stable, reason=reason),
            )
        yield from inode.waitq.wait_until(
            lambda: not inode.has_unfinished_writes()
        )

    def flush_inode(self, inode: NfsInode):
        """Generator: schedule everything, wait for stability.

        This is the paper's "schedule all pending writes for that inode
        and wait for their completion" (§3.3) and also the fsync/close
        path — NFS "always flushes completely before last close" (§2.3).
        """
        self.stats.explicit_flushes += 1
        while True:
            if inode.dirty:
                yield from self.bkl.hold(
                    "nfs_flush",
                    self.writepath.schedule_all(inode, reason="fsync-close"),
                )
            if inode.has_unfinished_writes():
                yield from inode.waitq.wait_until(
                    lambda: not inode.has_unfinished_writes()
                )
                continue
            if inode.unstable or inode.commit_in_flight:
                yield from self.commit_inode(inode, wait=True)
                continue
            if inode.dirty:  # a concurrent writer dirtied more
                continue
            return

    # -- internals -----------------------------------------------------------------

    def _writeback_retired(self) -> None:
        self.writeback_count -= 1
        if self.writeback_count <= self.behavior.max_request_hard:
            self.hard_waitq.wake_all()
