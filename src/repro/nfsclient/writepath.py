"""The write()-side NFS code path: ``nfs_updatepage`` and friends.

Per dirtied page segment (running in the writer's context):

1. charge page-cache memory for a fresh page (may block on the dirty
   limit — outside the BKL, since Linux drops the BKL across schedule()),
2. under the BKL: ``nfs_find_request`` (incompatible-request check) and
   ``nfs_update_request`` (find-or-create) — the two index searches the
   paper counts per call (§3.4), each charged at the active index's cost,
3. ``nfs_strategy``: fire a WRITE RPC once a full wsize run is dirty,
4. after releasing the lock, the flush policy's per-page hook (the stock
   MAX_REQUEST_SOFT / MAX_REQUEST_HARD behaviour of §3.3).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..sim import PRIO_USER
from ..units import PAGE_SIZE
from .coalesce import take_group
from .request import NfsPageRequest, RequestState

if TYPE_CHECKING:  # pragma: no cover
    from .client import NfsClient
    from .inode import NfsInode

__all__ = ["WritePath"]


class WritePath:
    """Writer-context machinery, bound to one client."""

    def __init__(self, client: "NfsClient"):
        self.client = client

    # -- entry point (from NfsFile.commit_write) ----------------------------

    def nfs_updatepage(
        self, inode: "NfsInode", page_index: int, offset_in_page: int, nbytes: int
    ):
        """Generator: absorb one dirtied page segment."""
        client = self.client
        obs = client.obs
        page_span = 0
        if obs.enabled:
            page_span = obs.span_begin(
                "nfs", "page_dirty", parent=obs.task_span(), page=page_index
            )
        while True:
            outcome = yield from self._try_updatepage(
                inode, page_index, offset_in_page, nbytes, page_span
            )
            if outcome == "done":
                break
            if outcome == "retry-uncharged":
                continue
            # An incompatible request owns the page: force it all the
            # way to stable (write + COMMIT if needed) and retry — the
            # nfs_wb_page path.  Passive waiting would deadlock on an
            # UNSTABLE request that nothing else ever commits.
            client.stats.page_waits += 1
            if obs.enabled:
                obs.count("nfs/page_waits")
            yield from self._force_request_done(inode, outcome)
        if obs.enabled:
            obs.span_end(page_span)
        yield from client.flush_policy.after_page(inode)

    def _try_updatepage(self, inode, page_index, offset_in_page, nbytes, page_span=0):
        client = self.client
        cpus = client.host.cpus
        costs = client.host.costs
        index = client.index

        # Memory accounting happens before the lock: blocking inside the
        # BKL would deadlock against the completion path that frees pages.
        charged = False
        if index.peek(inode.fileid, page_index) is None:
            yield from client.pagecache.charge(PAGE_SIZE)
            charged = True

        yield from client.bkl.acquire("nfs_commit_write")
        try:
            # First search: look for an incompatible request (§3.4).
            found, cost = index.find(inode.fileid, page_index)
            yield from cpus.execute(cost, label="nfs_find_request", priority=PRIO_USER)

            if found is None and not charged:
                # Raced with completion while blocked in charge(): the
                # page's request finished; account for the page afresh.
                return "retry-uncharged"
            if found is not None and charged:
                # Raced the other way: someone created a request while we
                # slept on memory. Give the page charge back.
                client.pagecache.uncharge(PAGE_SIZE)
                charged = False
            if found is not None and not found.can_extend(offset_in_page, nbytes):
                return found  # incompatible: caller waits and retries

            # Second search: nfs_update_request's own lookup (§3.4 notes
            # the two could be combined — see the `single_search` knob).
            if not client.behavior_single_search:
                _, cost2 = index.find(inode.fileid, page_index)
                yield from cpus.execute(
                    cost2, label="nfs_update_request", priority=PRIO_USER
                )

            yield from cpus.execute(
                costs.request_setup, label="nfs_request_setup", priority=PRIO_USER
            )
            if found is None:
                request = NfsPageRequest(
                    inode.fileid,
                    page_index,
                    offset_in_page,
                    nbytes,
                    created_at=client.sim.now,
                )
                request.span_id = page_span
                insert_cost = index.insert(request)
                yield from cpus.execute(
                    insert_cost, label="nfs_request_insert", priority=PRIO_USER
                )
                inode.note_created(request)
                client.live_requests += 1
                client.writeback_count += 1
                if client.obs.enabled:
                    client.obs.count("nfs/requests_created")
            else:
                found.extend(offset_in_page, nbytes)
                client.stats.coalesced_updates += 1
                if client.obs.enabled:
                    client.obs.count("nfs/requests_extended")

            # nfs_strategy: fire full wsize groups.
            yield from self.nfs_strategy(inode)
        finally:
            client.bkl.release()
        return "done"

    def _force_request_done(self, inode, req):
        """Generator: drive one request to DONE (nfs_wb_page)."""
        client = self.client
        while req.state is not RequestState.DONE:
            if req.state is RequestState.DIRTY:
                yield from client.bkl.hold(
                    "nfs_sync_page", self.schedule_all(inode, reason="sync-page")
                )
            elif req.state is RequestState.UNSTABLE:
                yield from client.commit_inode(inode, wait=True)
            else:  # SCHEDULED: the reply will move it on
                yield from inode.waitq.wait_until(
                    lambda: req.state is not RequestState.SCHEDULED
                )

    # -- strategy (runs under the BKL) ----------------------------------------

    def nfs_strategy(self, inode: "NfsInode"):
        """Generator: send every complete wsize run at the dirty head."""
        client = self.client
        pages_per_rpc = client.pages_per_rpc
        while True:
            group = take_group(inode, pages_per_rpc, force=False)
            if group is None:
                return
            if client.obs.enabled:
                client.obs.count("flush/pages/wsize", len(group))
                client.obs.count("flush/rpcs/wsize")
            yield from client.submit_write(inode, group)

    def schedule_all(self, inode: "NfsInode", stable=None, reason: str = "explicit"):
        """Generator: force every dirty request out, partial tails too.

        ``reason`` tags the flush trigger for the metrics registry
        (``flush/pages/<reason>``): soft-threshold, fsync-close,
        flushd-age, flushd-pressure, sync-page, or explicit.
        """
        client = self.client
        obs = client.obs
        while True:
            group = take_group(inode, client.pages_per_rpc, force=True)
            if group is None:
                return
            if obs.enabled:
                obs.count(f"flush/pages/{reason}", len(group))
                obs.count(f"flush/rpcs/{reason}")
            yield from client.submit_write(inode, group, stable=stable)
