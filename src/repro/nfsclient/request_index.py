"""The request-index interface both implementations share.

An index answers "is there already a write request for this page of
this file?" — the question ``nfs_find_request`` / ``nfs_update_request``
ask twice per page (§3.4).  Implementations return the *simulated* CPU
cost of each operation alongside the result, so the write path can
charge exactly what the modelled data structure would have cost, while
the Python-level structures stay efficient.
"""

from __future__ import annotations

from typing import Optional, Tuple

from .request import NfsPageRequest

__all__ = ["RequestIndex"]


class RequestIndex:
    """Abstract index over live page requests."""

    #: Human-readable name used in reports.
    kind = "abstract"

    #: optional passive observer (see repro.analysis.sanitize).
    sanitizer = None

    def peek(self, fileid: int, page_index: int) -> Optional[NfsPageRequest]:
        """Costless Python-level lookup (models the page-cache pointer,
        which locates the page without walking NFS lists)."""
        raise NotImplementedError  # pragma: no cover

    def find(self, fileid: int, page_index: int) -> Tuple[Optional[NfsPageRequest], int]:
        """Search; returns ``(request_or_None, simulated_cost_ns)``."""
        raise NotImplementedError  # pragma: no cover

    def insert(self, request: NfsPageRequest) -> int:
        """Add a request; returns the simulated cost in ns."""
        raise NotImplementedError  # pragma: no cover

    def remove(self, request: NfsPageRequest) -> int:
        """Drop a request; returns the simulated cost in ns."""
        raise NotImplementedError  # pragma: no cover

    def __len__(self) -> int:
        raise NotImplementedError  # pragma: no cover
