"""Grouping page requests into wsize RPCs.

"Write requests are coalesced into wsize chunks just before the client
generates write RPCs" (§3.4).  Groups are maximal contiguous runs taken
from the head of an inode's dirty queue; ``nfs_strategy`` only fires a
group once a full wsize worth is available, while explicit flushes force
out partial tails too.
"""

from __future__ import annotations

from typing import List, Optional

from .inode import NfsInode
from .request import NfsPageRequest

__all__ = ["take_group", "contiguous_run_length", "group_extent", "observe_group"]

#: Histogram bounds for coalesced-group sizes (pages per RPC).
GROUP_SIZE_BUCKETS = (1, 2, 4, 8, 16, 32)


def contiguous_run_length(inode: NfsInode, max_requests: int) -> int:
    """Length of the contiguous run at the head of the dirty queue."""
    run = 0
    prev_end: Optional[int] = None
    for req in inode.dirty:
        if run >= max_requests:
            break
        if prev_end is not None and req.file_offset != prev_end:
            break
        prev_end = req.file_offset + req.nbytes
        run += 1
    return run


def take_group(
    inode: NfsInode, pages_per_rpc: int, force: bool = False
) -> Optional[List[NfsPageRequest]]:
    """Pop the next RPC-worth of requests, or None.

    Without ``force``, only a full ``pages_per_rpc`` contiguous run is
    taken (nfs_strategy); with ``force``, any non-empty head run goes
    (flush paths push partial tails).
    """
    run = contiguous_run_length(inode, pages_per_rpc)
    if run == 0:
        return None
    if run < pages_per_rpc and not force:
        return None
    return [inode.dirty.popleft() for _ in range(run)]


def group_extent(group: List[NfsPageRequest]) -> tuple:
    """``(offset, count)`` covered by a contiguous group."""
    offset = group[0].file_offset
    count = sum(req.nbytes for req in group)
    return offset, count


def observe_group(obs, group: List[NfsPageRequest], parent: int = 0) -> int:
    """Record one coalesced group with the observability layer.

    Emits the ``coalesce/group_pages`` size histogram and an instant
    ``coalesce`` span under ``parent`` so the causal tree shows where
    each RPC-worth of pages was assembled.  Returns the span id.
    """
    if not obs.enabled:
        return 0
    _, count = group_extent(group)
    obs.observe("coalesce/group_pages", len(group), GROUP_SIZE_BUCKETS)
    obs.count("coalesce/groups")
    obs.count("coalesce/bytes", count)
    return obs.span_point(
        "nfs", "coalesce", parent=parent, pages=len(group), bytes=count
    )
