"""NFS page write requests (``struct nfs_page``).

The VFS hands the NFS client page-sized segments; each becomes a write
request tracked on its inode until the data is stable on the server.
Requests move through::

    DIRTY ──schedule──▶ SCHEDULED ──UNSTABLE reply──▶ UNSTABLE ──COMMIT──▶ DONE
                              └──────FILE_SYNC reply────────────────────▶ DONE

Every live request pins one page of client memory (its page cache page)
— eight further bytes of hash-table linkage is the memory price of the
paper's index patch (§3.4).
"""

from __future__ import annotations

import enum
from typing import Optional

from ..units import PAGE_SIZE

__all__ = ["RequestState", "NfsPageRequest"]


class RequestState(enum.Enum):
    DIRTY = "dirty"
    SCHEDULED = "scheduled"
    UNSTABLE = "unstable"
    DONE = "done"


class NfsPageRequest:
    """One page-granular pending write."""

    __slots__ = (
        "fileid",
        "page_index",
        "offset_in_page",
        "nbytes",
        "state",
        "created_at",
        "scheduled_at",
        "completed_at",
        "verf",
        "span_id",
    )

    def __init__(
        self,
        fileid: int,
        page_index: int,
        offset_in_page: int,
        nbytes: int,
        created_at: int,
    ):
        if not 0 <= offset_in_page < PAGE_SIZE:
            raise ValueError(f"offset_in_page {offset_in_page} out of range")
        if not 0 < nbytes <= PAGE_SIZE - offset_in_page:
            raise ValueError(f"nbytes {nbytes} does not fit the page")
        self.fileid = fileid
        self.page_index = page_index
        self.offset_in_page = offset_in_page
        self.nbytes = nbytes
        self.state = RequestState.DIRTY
        self.created_at = created_at
        self.scheduled_at: Optional[int] = None
        self.completed_at: Optional[int] = None
        #: Write verifier from the UNSTABLE reply; compared against the
        #: COMMIT verf — a mismatch means the server rebooted in between
        #: and this page must be written again.
        self.verf: Optional[int] = None
        #: Causal span of the page-dirtying write (repro.obs); 0 when
        #: tracing is off.  Pure annotation — never drives behaviour.
        self.span_id = 0

    @property
    def live(self) -> bool:
        return self.state is not RequestState.DONE

    @property
    def file_offset(self) -> int:
        return self.page_index * PAGE_SIZE + self.offset_in_page

    def can_extend(self, offset_in_page: int, nbytes: int) -> bool:
        """Can ``[offset, offset+nbytes)`` merge into this request?

        Only DIRTY requests can grow, and only when the byte ranges
        touch or overlap — disjoint ranges on one page would break write
        ordering ("the client usually caches only a single write request
        per page", §3.4).
        """
        if self.state is not RequestState.DIRTY:
            return False
        new_end = offset_in_page + nbytes
        cur_end = self.offset_in_page + self.nbytes
        return not (new_end < self.offset_in_page or offset_in_page > cur_end)

    def extend(self, offset_in_page: int, nbytes: int) -> None:
        """Merge a touching/overlapping range into this request."""
        if not self.can_extend(offset_in_page, nbytes):
            raise ValueError("cannot extend with a disjoint or frozen range")
        new_start = min(self.offset_in_page, offset_in_page)
        new_end = max(self.offset_in_page + self.nbytes, offset_in_page + nbytes)
        self.offset_in_page = new_start
        self.nbytes = new_end - new_start

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<NfsPageRequest file={self.fileid} page={self.page_index} "
            f"[{self.offset_in_page},+{self.nbytes}) {self.state.value}>"
        )
