"""``nfs_flushd``: the client's write-behind daemon.

Wakes periodically (and whenever the page cache signals dirty-memory
pressure) to push aged partial requests to the server and to COMMIT
unstable data so its pages can be reclaimed.  Under the stock lock
policy every flushing step happens with the BKL held — "nfs_flushd
holds the global kernel lock whenever it is awake and flushing
requests" (§3.5).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..sim import Event
from ..units import ms

if TYPE_CHECKING:  # pragma: no cover
    from .client import NfsClient

__all__ = ["NfsFlushd"]


class NfsFlushd:
    """Background flush daemon for one client."""

    def __init__(
        self,
        client: "NfsClient",
        interval_ns: int = ms(100),
        age_limit_ns: int = ms(500),
    ):
        self.client = client
        self.interval_ns = interval_ns
        self.age_limit_ns = age_limit_ns
        self.wakeups = 0
        self.commits_started = 0
        self._kick_event: Event = Event(client.sim)
        #: A kick arrived while the daemon was busy (or before its loop
        #: first ran) — handle it on the next pass instead of losing it.
        self._kick_pending = False
        client.pagecache.on_pressure(self.kick)
        self.task = client.sim.spawn(
            self._loop(), name=f"{client.host.name}-nfs_flushd", daemon=True
        )

    def kick(self) -> None:
        """Wake the daemon early (memory pressure, explicit nudge)."""
        self._kick_pending = True
        if not self._kick_event.fired:
            self._kick_event.trigger()

    def _loop(self):
        client = self.client
        sim = client.sim
        while True:
            if not self._kick_pending:
                self._kick_event = Event(sim)
                if self._kick_pending:  # raced in while re-arming
                    continue
                timer = sim.schedule(self.interval_ns, self.kick)
                yield self._kick_event
                timer.cancel()
            self._kick_pending = False
            self.wakeups += 1
            if client.obs.enabled:
                client.obs.count("flushd/wakeups")
            yield from self._flush_pass()

    def _flush_pass(self):
        client = self.client
        pressure = client.pagecache.over_background
        reason = "flushd-pressure" if pressure else "flushd-age"
        for inode in client.inodes():
            if inode.dirty and (pressure or self._has_aged_dirty(inode)):
                yield from client.bkl.hold(
                    "nfs_flushd",
                    client.writepath.schedule_all(inode, reason=reason),
                )
            if pressure and inode.unstable_bytes > 0 and not inode.commit_in_flight:
                # Commit so the reply can release pinned pages; do not
                # wait here — the daemon must keep servicing other work.
                self.commits_started += 1
                if client.obs.enabled:
                    client.obs.count("flushd/commits_started")
                yield from client.commit_inode(inode, wait=False)

    def _has_aged_dirty(self, inode) -> bool:
        if not inode.dirty:
            return False
        oldest = inode.dirty[0]
        return self.client.sim.now - oldest.created_at >= self.age_limit_ns
