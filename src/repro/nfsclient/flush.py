"""Flush policies: the stock 2.4.4 thresholds versus lazy caching.

Stock 2.4.4 (§3.3): once an inode accumulates more than
``MAX_REQUEST_SOFT`` (192) live requests, the *writer* synchronously
flushes the whole inode and waits — the 19 ms latency spikes of Fig. 2.
Once the mount holds more than ``MAX_REQUEST_HARD`` (256), writers sleep
until completions bring the count back down.

The paper's first patch removes this "redundant flushing logic": the
client should cache as many requests as memory allows and flush only on
fsync/close or memory pressure (:class:`LazyFlushPolicy`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from .client import NfsClient
    from .inode import NfsInode

__all__ = ["FlushPolicy", "StockFlushPolicy", "LazyFlushPolicy"]


class FlushPolicy:
    """Per-page hook run in the writer's context after each page lands."""

    def after_page(self, inode: "NfsInode"):  # pragma: no cover - interface
        raise NotImplementedError


class StockFlushPolicy(FlushPolicy):
    """MAX_REQUEST_SOFT / MAX_REQUEST_HARD behaviour of Linux 2.4.4."""

    def __init__(self, client: "NfsClient", soft: int, hard: int):
        self.client = client
        self.soft = soft
        self.hard = hard

    def after_page(self, inode: "NfsInode"):
        client = self.client
        if inode.writeback_requests > self.soft:
            client.stats.soft_flushes += 1
            if client.obs.enabled:
                client.obs.count("flush/soft_triggers")
            yield from client.flush_writes(inode, reason="soft-threshold")
        slept = False
        while client.writeback_count > self.hard:
            if not slept:
                client.stats.hard_sleeps += 1
                slept = True
                if client.obs.enabled:
                    client.obs.count("flush/hard_sleeps")
            yield from client.hard_waitq.sleep()


class LazyFlushPolicy(FlushPolicy):
    """The patch: no threshold flushing; memory pressure rules instead."""

    def after_page(self, inode: "NfsInode"):
        return
        yield  # pragma: no cover - generator marker
