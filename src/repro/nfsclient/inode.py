"""Per-file NFS client state (``struct nfs_inode_info``)."""

from __future__ import annotations

from collections import deque
from typing import Deque, List, Optional

from ..sim import Simulator, WaitQueue
from .request import NfsPageRequest, RequestState

__all__ = ["NfsInode"]


class NfsInode:
    """Book-keeping for one NFS file's outstanding writes."""

    def __init__(self, sim: Simulator, fileid: int, name: str):
        self.fileid = fileid
        self.name = name
        #: DIRTY requests not yet grouped into an RPC, in creation order.
        self.dirty: Deque[NfsPageRequest] = deque()
        #: Requests acknowledged UNSTABLE, awaiting COMMIT.
        self.unstable: List[NfsPageRequest] = []
        self.unstable_bytes = 0
        #: SCHEDULED request count (in an RPC, reply not yet processed).
        self.writes_in_flight = 0
        #: All requests not yet DONE (dirty + in flight + unstable).
        self.live_requests = 0
        self.total_requests_created = 0
        self.commit_in_flight = False
        #: Broadcast on every completion (write done, commit done).
        self.waitq = WaitQueue(sim, f"inode{fileid}-waitq")
        #: Clean pages resident in the client cache (survive close).
        self.cached_pages = set()
        #: page -> Event for in-flight READs (fault coalescing).
        self.read_pending = {}
        #: Server change token seen at the last open (close-to-open).
        self.server_change_id = 0
        #: Sticky async-write error (Linux semantics: a failed background
        #: write is reported at the *next* write/fsync/close on the file).
        self.pending_error: Optional[str] = None
        #: optional passive observer (see repro.analysis.sanitize).
        self.sanitizer = None

    def consume_error(self) -> Optional[str]:
        """Return and clear the sticky error, if any."""
        err = self.pending_error
        self.pending_error = None
        return err

    def invalidate_cache(self) -> None:
        """Drop clean cached pages (revalidation found the file changed)."""
        self.cached_pages.clear()

    def has_unfinished_writes(self) -> bool:
        """Dirty or in-flight WRITE data (commit state not included)."""
        return bool(self.dirty) or self.writes_in_flight > 0

    @property
    def writeback_requests(self) -> int:
        """Requests in the write-back pipeline: dirty + in flight.

        This is the count the 2.4.4 thresholds compare against —
        UNSTABLE requests awaiting COMMIT are off the write-back lists
        and do not count.
        """
        return len(self.dirty) + self.writes_in_flight

    def is_clean(self) -> bool:
        return self.live_requests == 0 and not self.commit_in_flight

    def note_created(self, request: NfsPageRequest) -> None:
        self.dirty.append(request)
        self.live_requests += 1
        self.total_requests_created += 1
        if self.sanitizer is not None:
            self.sanitizer.on_request_list_mutation(self, "note_created")

    def note_scheduled(self, request: NfsPageRequest, now: int) -> None:
        request.state = RequestState.SCHEDULED
        request.scheduled_at = now
        self.writes_in_flight += 1
        if self.sanitizer is not None:
            self.sanitizer.on_request_list_mutation(self, "note_scheduled")

    def note_unstable(self, request: NfsPageRequest) -> None:
        request.state = RequestState.UNSTABLE
        self.writes_in_flight -= 1
        self.unstable.append(request)
        self.unstable_bytes += request.nbytes
        if self.sanitizer is not None:
            self.sanitizer.on_request_list_mutation(self, "note_unstable")

    def note_write_done(self, request: NfsPageRequest, now: int) -> None:
        request.state = RequestState.DONE
        request.completed_at = now
        self.writes_in_flight -= 1
        self.live_requests -= 1
        if self.sanitizer is not None:
            self.sanitizer.on_request_list_mutation(self, "note_write_done")

    def note_committed(self, request: NfsPageRequest, now: int) -> None:
        request.state = RequestState.DONE
        request.completed_at = now
        self.live_requests -= 1
        self.unstable_bytes -= request.nbytes
        if self.sanitizer is not None:
            self.sanitizer.on_request_list_mutation(self, "note_committed")

    def note_redirty(self, request: NfsPageRequest) -> None:
        """An UNSTABLE request whose COMMIT verf mismatched: the server
        rebooted and may have lost the data, so the page goes back to
        DIRTY for a fresh WRITE (Linux ``nfs_commit_done`` resend path).
        """
        request.state = RequestState.DIRTY
        request.verf = None
        self.unstable_bytes -= request.nbytes
        self.dirty.append(request)
        if self.sanitizer is not None:
            self.sanitizer.on_request_list_mutation(self, "note_redirty")
