"""VFS write entry point: page-sized splitting and the copy loop.

``generic_file_write`` hands file systems data one page at a time —
"The Linux VFS layer passes write requests no larger than a page to
file systems, one at a time" (§3.4).  Each page segment costs a user-
to-kernel copy, then the file system's ``commit_write`` hook runs.
"""

from __future__ import annotations

from typing import List, Tuple

from ..net.host import Host
from ..units import PAGE_SIZE

__all__ = ["VfsFile", "generic_file_write", "generic_file_read", "page_segments"]


class VfsFile:
    """Base for simulated files: position plus file-system hooks."""

    def __init__(self, fileid: int, name: str):
        self.fileid = fileid
        self.name = name
        self.pos = 0
        self.size = 0
        self.closed = False

    # -- hooks implemented by concrete file systems -------------------------

    def commit_write(self, page_index: int, offset_in_page: int, nbytes: int):
        """Generator: one dirtied page segment reached the file system."""
        raise NotImplementedError  # pragma: no cover

    def has_page(self, page_index: int) -> bool:
        """Is this page resident in the client's cache?"""
        raise NotImplementedError  # pragma: no cover

    def readpage(self, page_index: int):
        """Generator: fault the page in (may read ahead)."""
        raise NotImplementedError  # pragma: no cover

    def fsync(self):
        """Generator: make everything written so far stable."""
        raise NotImplementedError  # pragma: no cover

    def release(self):
        """Generator: last close semantics."""
        raise NotImplementedError  # pragma: no cover


def page_segments(offset: int, nbytes: int) -> List[Tuple[int, int, int]]:
    """Split ``[offset, offset+nbytes)`` into per-page segments.

    Returns ``(page_index, offset_in_page, seg_bytes)`` tuples.
    """
    segments = []
    end = offset + nbytes
    while offset < end:
        page_index = offset // PAGE_SIZE
        in_page = offset % PAGE_SIZE
        seg = min(PAGE_SIZE - in_page, end - offset)
        segments.append((page_index, in_page, seg))
        offset += seg
    return segments


def generic_file_write(host: Host, file: VfsFile, nbytes: int):
    """Generator: append ``nbytes`` at the file position, page by page."""
    for page_index, in_page, seg in page_segments(file.pos, nbytes):
        copy_cost = int(host.costs.page_copy * seg / PAGE_SIZE)
        yield from host.cpus.execute(copy_cost, label="copy_from_user")
        yield from file.commit_write(page_index, in_page, seg)
    file.pos += nbytes
    if file.pos > file.size:
        file.size = file.pos
    return nbytes


def generic_file_read(host: Host, file: VfsFile, nbytes: int):
    """Generator: read from the file position, page by page.

    Cached pages cost only the copy-to-user; misses fault through the
    file system's ``readpage`` hook (which typically reads ahead).
    This is why "client O/S caching moderates the performance of
    application read requests" (§2.3).  Returns bytes actually read
    (short at EOF).
    """
    nbytes = max(0, min(nbytes, file.size - file.pos))
    for page_index, _in_page, seg in page_segments(file.pos, nbytes):
        if not file.has_page(page_index):
            yield from file.readpage(page_index)
        copy_cost = int(host.costs.page_copy * seg / PAGE_SIZE)
        yield from host.cpus.execute(copy_cost, label="copy_to_user")
    file.pos += nbytes
    return nbytes
