"""Client kernel substrate: BKL, page cache, VFS, syscall layer."""

from .bkl import (
    BigKernelLock,
    LockPolicy,
    NoLockPolicy,
    SendUnlockedPolicy,
    StockLockPolicy,
)
from .pagecache import PageCache
from .syscalls import SyscallLayer
from .vfs import VfsFile, generic_file_write, page_segments

__all__ = [
    "BigKernelLock",
    "LockPolicy",
    "StockLockPolicy",
    "SendUnlockedPolicy",
    "NoLockPolicy",
    "PageCache",
    "SyscallLayer",
    "VfsFile",
    "generic_file_write",
    "page_segments",
]
