"""The Big Kernel Lock and the send-path locking policies.

Linux 2.4 serialised most of the NFS client and RPC layer under the
global kernel lock.  The paper's SMP fix observes that the network
layer stopped needing the BKL in 2.3, so it is safe to *release* the
lock around ``sock_sendmsg()`` and reacquire it afterwards (§3.5).

:class:`StockLockPolicy` models the unpatched client (wire sends happen
under the BKL); :class:`SendUnlockedPolicy` models the patch.  Servers
and other lock-free contexts use :class:`NoLockPolicy`.
"""

from __future__ import annotations

from ..sim import MonitoredLock, Simulator

__all__ = [
    "BigKernelLock",
    "LockPolicy",
    "StockLockPolicy",
    "SendUnlockedPolicy",
    "NoLockPolicy",
]


class BigKernelLock(MonitoredLock):
    """Reentrant kernel lock with full break/reacquire, like ``lock_kernel``."""

    def __init__(self, sim: Simulator):
        super().__init__(sim, name="bkl")

    def held_by_current(self) -> bool:
        return self.owner is self._sim.current_task

    def break_all(self) -> int:
        """Drop the lock completely if the current task owns it.

        Returns the hold depth to restore with :meth:`reacquire`
        (0 when the caller did not own the lock).
        """
        if not self.held_by_current():
            return 0
        depth = self.depth
        if self.sanitizer is not None:
            self.sanitizer.on_break_all(self, self._sim.current_task, depth)
        self.depth = 1
        self.release()
        return depth

    def reacquire(self, depth: int, label: str):
        """Generator: regain the lock at the remembered ``depth``."""
        if depth <= 0:
            return
            yield  # pragma: no cover - generator marker
        if self._sim.current_task is None:
            # Generator cleanup (GC of an abandoned simulation) runs the
            # enclosing finally outside task context; nothing to relock.
            return
        yield from self.acquire(label)
        self.depth = depth
        if self.sanitizer is not None:
            self.sanitizer.on_depth_restored(self, self._sim.current_task, depth)


class LockPolicy:
    """How RPC wire sends and reply processing interact with the BKL."""

    def wire_send(self, label: str, body):  # pragma: no cover - interface
        """Generator: run ``body`` (the sock_sendmsg work) per policy."""
        raise NotImplementedError

    def critical(self, label: str, body):  # pragma: no cover - interface
        """Generator: run ``body`` inside the kernel-lock critical section."""
        raise NotImplementedError

    def daemon_acquire(self, label: str):
        """Generator: a flush/completion daemon starts a work burst.

        "Nfs_flushd holds the global kernel lock whenever it is awake and
        flushing requests" (§3.5) — daemons lock once per burst, not per
        operation.  Note the paper's fix does NOT remove this hold
        ("after removing the global kernel lock from the daemon, we
        found little improvement"); it only releases around the send.
        """
        return
        yield  # pragma: no cover - generator marker

    def daemon_release(self) -> None:
        """End the daemon's work burst."""


class StockLockPolicy(LockPolicy):
    """2.4.4 behaviour: the RPC layer requires the BKL over the send."""

    def __init__(self, bkl: BigKernelLock):
        self.bkl = bkl

    def wire_send(self, label: str, body):
        return (yield from self.bkl.hold(label, body))

    def critical(self, label: str, body):
        return (yield from self.bkl.hold(label, body))

    def daemon_acquire(self, label: str):
        yield from self.bkl.acquire(label)

    def daemon_release(self) -> None:
        # Tolerate generator cleanup (GC of an abandoned simulation):
        # the finally-clause then runs outside task context, where the
        # lock state no longer matters.
        if self.bkl.held_by_current():
            self.bkl.release()


class SendUnlockedPolicy(LockPolicy):
    """The paper's patch: drop the BKL around ``sock_sendmsg()``."""

    def __init__(self, bkl: BigKernelLock):
        self.bkl = bkl

    def wire_send(self, label: str, body):
        depth = self.bkl.break_all()
        try:
            result = yield from body
        finally:
            yield from self.bkl.reacquire(depth, label)
        return result

    def critical(self, label: str, body):
        return (yield from self.bkl.hold(label, body))

    def daemon_acquire(self, label: str):
        yield from self.bkl.acquire(label)

    def daemon_release(self) -> None:
        # Tolerate generator cleanup (GC of an abandoned simulation):
        # the finally-clause then runs outside task context, where the
        # lock state no longer matters.
        if self.bkl.held_by_current():
            self.bkl.release()


class NoLockPolicy(LockPolicy):
    """No global lock at all (servers, standalone transports)."""

    def wire_send(self, label: str, body):
        return (yield from body)

    def critical(self, label: str, body):
        return (yield from body)
