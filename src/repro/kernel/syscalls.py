"""System-call layer with the benchmark's measurement point.

Wraps file operations with entry/exit overhead and per-call wall-clock
latency recording — the paper measures ``write()`` latency "on either
side of a target section of code" with ``do_gettimeofday()`` (§3.3);
when instrumentation is enabled we charge its (small) cost too.
"""

from __future__ import annotations

from typing import Optional

from ..errors import EioError, SimulationError
from ..net.host import Host
from ..obs.core import DISABLED
from .vfs import VfsFile, generic_file_read, generic_file_write

__all__ = ["SyscallLayer"]

#: Syscall-latency histogram bounds, in microseconds.
LATENCY_BUCKETS_US = (50, 100, 200, 500, 1_000, 2_000, 5_000, 20_000, 100_000, 1_000_000)


class SyscallLayer:
    """write()/fsync()/close() entry points for one process."""

    def __init__(
        self,
        host: Host,
        instrument: bool = True,
        latency_sink=None,
    ):
        self.host = host
        self.instrument = instrument
        #: Object with ``record(start_ns, end_ns)``; usually a
        #: :class:`repro.bench.latency.LatencyTrace`.
        self.latency_sink = latency_sink
        #: Observability sink; root spans are minted here (repro.obs).
        self.obs = DISABLED
        self.write_calls = 0
        self.bytes_written = 0
        self.read_calls = 0
        self.bytes_read = 0
        #: Calls that returned EIO (soft-mount major timeouts surfacing).
        self.eio_errors = 0

    def write(self, file: VfsFile, nbytes: int):
        """Generator: one ``write(fd, buf, nbytes)`` call.

        Raises :class:`EioError` when a soft mount gave up on the file's
        write-back (the error latched by an earlier failed async WRITE).
        """
        self._check_open(file, "write")
        start = self.host.sim.now
        span = self._span_enter("write", nbytes=nbytes)
        yield from self._enter()
        try:
            written = yield from generic_file_write(self.host, file, nbytes)
        except EioError:
            yield from self._fail(start, span)
            raise
        yield from self._exit()
        self.write_calls += 1
        self.bytes_written += written
        self._record(start)
        obs = self.obs
        if obs.enabled:
            obs.count("syscall/write_calls")
            obs.count("syscall/write_bytes", written)
            latency_us = (self.host.sim.now - start) // 1000
            obs.observe("syscall/write_latency_us", latency_us, LATENCY_BUCKETS_US)
            obs.series_count("syscall/write_bytes", written)
            obs.series_observe("syscall/write_latency_us", latency_us)
            self._span_exit(span)
        return written

    def read(self, file: VfsFile, nbytes: int):
        """Generator: one ``read(fd, buf, nbytes)`` call."""
        self._check_open(file, "read")
        start = self.host.sim.now
        span = self._span_enter("read", nbytes=nbytes)
        yield from self._enter()
        try:
            nread = yield from generic_file_read(self.host, file, nbytes)
        except EioError:
            yield from self._fail(start, span)
            raise
        yield from self._exit()
        self.read_calls += 1
        self.bytes_read += nread
        self._record(start)
        obs = self.obs
        if obs.enabled:
            obs.count("syscall/read_calls")
            obs.count("syscall/read_bytes", nread)
            self._span_exit(span)
        return nread

    def fsync(self, file: VfsFile):
        """Generator: one ``fsync(fd)`` call."""
        self._check_open(file, "fsync")
        start = self.host.sim.now
        span = self._span_enter("fsync")
        yield from self._enter()
        try:
            yield from file.fsync()
        except EioError:
            yield from self._fail(start, span)
            raise
        yield from self._exit()
        obs = self.obs
        if obs.enabled:
            obs.count("syscall/fsync_calls")
            self._span_exit(span)

    def close(self, file: VfsFile):
        """Generator: final ``close(fd)``.

        EIO from the final flush still closes the descriptor — exactly
        the trap close-to-open consistency sets for applications that
        don't check close()'s return value.
        """
        self._check_open(file, "close")
        start = self.host.sim.now
        span = self._span_enter("close")
        yield from self._enter()
        try:
            yield from file.release()
        except EioError:
            file.closed = True
            yield from self._fail(start, span)
            raise
        file.closed = True
        yield from self._exit()
        obs = self.obs
        if obs.enabled:
            obs.count("syscall/close_calls")
            self._span_exit(span)

    # -- internals -----------------------------------------------------------

    @staticmethod
    def _check_open(file: VfsFile, op: str) -> None:
        if file.closed:
            raise SimulationError(f"{op}() on closed file {file.name!r} (EBADF)")

    def _enter(self):
        half = self.host.costs.syscall_overhead // 2
        yield from self.host.cpus.execute(half, label="syscall_entry")

    def _exit(self):
        costs = self.host.costs
        tail = costs.syscall_overhead - costs.syscall_overhead // 2
        if self.instrument:
            tail += costs.instrumentation
        yield from self.host.cpus.execute(tail, label="syscall_exit")

    def _fail(self, start: int, span: int = 0):
        """Generator: error return path — exit cost, EIO accounting."""
        self.eio_errors += 1
        yield from self._exit()
        self._record(start)
        obs = self.obs
        if obs.enabled:
            obs.count("syscall/eio_errors")
            self._span_exit(span, error="EIO")

    def _record(self, start: int) -> None:
        if self.latency_sink is not None:
            self.latency_sink.record(start, self.host.sim.now)

    def _span_enter(self, name: str, **attrs) -> int:
        """Mint the root span for one syscall and make it the task span."""
        obs = self.obs
        if not obs.enabled:
            return 0
        span = obs.span_begin("syscall", name, **attrs)
        obs.set_task_span(span)
        return span

    def _span_exit(self, span: int, **attrs) -> None:
        obs = self.obs
        if obs.enabled:
            obs.clear_task_span()
            obs.span_end(span, **attrs)
