"""Client page cache with dirty-memory accounting.

Dirty bytes are charged when an application write lands in the cache and
released only when the data is *stable* on the backing store (disk ack,
FILE_SYNC WRITE reply, or COMMIT reply).  Writers charging past the
dirty limit block — this is the "VFS layer blocks the writer" memory
back-pressure of §3.3, and the mechanism that bends the throughput
curves of Figs. 1 and 7 once file size approaches client RAM.

Crossing the background threshold notifies pressure listeners (bdflush
or nfs_flushd) so write-back starts before the hard wall is hit.
"""

from __future__ import annotations

from typing import Callable, List

from ..errors import ResourceError
from ..obs.core import DISABLED
from ..sim import Simulator, WaitQueue

__all__ = ["PageCache"]


class PageCache:
    """Dirty-byte accounting shared by every file on the client."""

    def __init__(
        self,
        sim: Simulator,
        dirty_limit_bytes: int,
        background_bytes: int,
        name: str = "pagecache",
    ):
        if dirty_limit_bytes <= 0:
            raise ResourceError(f"{name}: dirty limit must be positive")
        if background_bytes > dirty_limit_bytes:
            raise ResourceError(f"{name}: background threshold above limit")
        self._sim = sim
        self.name = name
        self.dirty_limit = dirty_limit_bytes
        self.background_limit = background_bytes
        self.dirty_bytes = 0
        self.peak_dirty = 0
        self.throttled_count = 0
        self.throttled_ns = 0
        self._waitq = WaitQueue(sim, f"{name}-throttle")
        self._pressure_listeners: List[Callable[[], None]] = []
        #: Observability sink (repro.obs); passive, defaults disabled.
        self.obs = DISABLED

    def on_pressure(self, listener: Callable[[], None]) -> None:
        """Register a write-back daemon kick."""
        self._pressure_listeners.append(listener)

    @property
    def over_background(self) -> bool:
        return self.dirty_bytes > self.background_limit

    @property
    def at_limit(self) -> bool:
        return self.dirty_bytes >= self.dirty_limit

    def charge(self, nbytes: int):
        """Generator: account ``nbytes`` of freshly dirtied data.

        Blocks (after kicking write-back) while the cache is at its
        dirty limit.  Never called with the BKL held — Linux's BKL is
        dropped across ``schedule()``, and we model that by structuring
        call sites so blocking happens outside lock sections.
        """
        if nbytes < 0:
            raise ResourceError(f"{self.name}: negative charge")
        throttle_start = None
        while self.dirty_bytes + nbytes > self.dirty_limit:
            if throttle_start is None:
                throttle_start = self._sim.now
                self.throttled_count += 1
            self._notify_pressure()
            yield from self._waitq.sleep()
        if throttle_start is not None:
            self.throttled_ns += self._sim.now - throttle_start
        self.dirty_bytes += nbytes
        if self.dirty_bytes > self.peak_dirty:
            self.peak_dirty = self.dirty_bytes
        obs = self.obs
        if obs.enabled:
            obs.count("pagecache/bytes_charged", nbytes)
            obs.gauge("pagecache/dirty_bytes", self.dirty_bytes)
            obs.series_gauge("pagecache/dirty_bytes", self.dirty_bytes)
            obs.sample("pagecache", "dirty_bytes", self.dirty_bytes)
            if throttle_start is not None:
                obs.count("pagecache/throttle_events")
                obs.count("pagecache/throttle_ns", self._sim.now - throttle_start)
        if self.over_background:
            self._notify_pressure()

    def uncharge(self, nbytes: int) -> None:
        """Data became stable: release accounting and wake writers."""
        if nbytes < 0 or nbytes > self.dirty_bytes:
            raise ResourceError(
                f"{self.name}: bad uncharge {nbytes} (dirty={self.dirty_bytes})"
            )
        self.dirty_bytes -= nbytes
        obs = self.obs
        if obs.enabled:
            obs.count("pagecache/bytes_uncharged", nbytes)
            obs.gauge("pagecache/dirty_bytes", self.dirty_bytes)
            obs.series_gauge("pagecache/dirty_bytes", self.dirty_bytes)
            obs.sample("pagecache", "dirty_bytes", self.dirty_bytes)
        self._waitq.wake_all()

    @property
    def throttled_writers(self) -> int:
        return self._waitq.sleeping

    def _notify_pressure(self) -> None:
        for listener in self._pressure_listeners:
            listener()
